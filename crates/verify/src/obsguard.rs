//! Observability determinism guard.
//!
//! Observability must be a pure observer: enabling `TAC25D_OBS` may not
//! change a single byte of any CSV a bench binary emits. This module runs
//! one manifest binary twice under the pinned seed-42 configuration — once
//! plain, once with the JSONL sink attached — and diffs the report CSVs
//! byte-for-byte (the same idea as the differential tester's seed-42
//! byte-identical check). It also validates the obs artifacts themselves:
//! every JSONL line must parse as an event object, and the
//! `BENCH_profile.json` must carry the spans and counters the acceptance
//! criteria name.

use std::fs;
use std::path::Path;
use std::process::Command;

use crate::golden::{bin_dir, workspace_root};
use tac25d_obs::json::{self, Value};

/// Spans whose per-name rollup must appear (with nonzero count) in a
/// fig8-class profile.
pub const REQUIRED_SPANS: &[&str] = &[
    "thermal.pcg_solve",
    "thermal.leakage_fixed_point",
    "optimizer.greedy_start",
];

/// Counters that must be present and nonzero in a fig8-class profile.
/// (`surrogate.predictions` is checked on the surrogate-screened entry of
/// [`obs_manifest`] instead — fig8 runs the exact-fidelity organizer.)
pub const REQUIRED_COUNTERS: &[&str] = &["thermal.exact_solves", "thermal.pcg_iterations"];

/// One binary the guard drives, with the obs coverage it must produce.
#[derive(Debug, Clone, Copy)]
pub struct ObsSpec {
    /// Bench binary name (resolved next to the `verify` executable).
    pub bin: &'static str,
    /// Command-line arguments.
    pub args: &'static [&'static str],
    /// Report CSVs diffed byte-for-byte between a plain run and a
    /// `TAC25D_OBS` run. Empty skips the plain run entirely: the entry
    /// then only validates obs artifact coverage (for binaries whose
    /// sims-count columns are scheduling-dependent and so can differ
    /// between two runs for reasons unrelated to observability).
    pub reports: &'static [&'static str],
    /// Spans that must roll up with nonzero counts in the profile.
    pub required_spans: &'static [&'static str],
    /// Counters that must be present and nonzero in the profile.
    pub required_counters: &'static [&'static str],
}

/// The guarded binaries. fig8 exercises thermal, optimizer and bench
/// layers under the exact fidelity and has fully deterministic CSVs (it
/// is in the golden manifest), so it carries the byte-identical check;
/// the single-benchmark surrogate_validation run covers the screened
/// prediction path.
pub fn obs_manifest() -> Vec<ObsSpec> {
    vec![
        ObsSpec {
            bin: "fig8",
            args: &["--fast"],
            reports: &["fig8"],
            required_spans: REQUIRED_SPANS,
            required_counters: REQUIRED_COUNTERS,
        },
        ObsSpec {
            bin: "surrogate_validation",
            args: &["--fast", "--benchmark", "cholesky"],
            reports: &[],
            required_spans: &["thermal.pcg_solve"],
            required_counters: &["surrogate.predictions"],
        },
    ]
}

/// The outcome of the determinism guard for one binary.
#[derive(Debug, Clone)]
pub struct ObsOutcome {
    /// The binary.
    pub bin: String,
    /// Failure descriptions; empty means the guard passed.
    pub failures: Vec<String>,
}

impl ObsOutcome {
    /// True when observability changed nothing and its artifacts are valid.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Validates a JSONL event stream: every non-empty line parses as a JSON
/// object with an `ev` string. Returns failure lines.
pub fn validate_jsonl(stream: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let mut events = 0usize;
    for (i, line) in stream.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(v) => {
                if v.get("ev").and_then(Value::as_str).is_none() {
                    failures.push(format!("jsonl line {}: no \"ev\" field", i + 1));
                } else {
                    events += 1;
                }
            }
            Err(e) => failures.push(format!("jsonl line {}: {e}", i + 1)),
        }
    }
    if events == 0 {
        failures.push("jsonl stream contains no events".to_owned());
    }
    failures
}

/// Validates a profile document against the acceptance criteria: total
/// wall time present, `required_spans` rolled up with nonzero counts,
/// `required_counters` present and nonzero. Returns failure lines.
pub fn validate_profile(
    profile: &Value,
    required_spans: &[&str],
    required_counters: &[&str],
) -> Vec<String> {
    let mut failures = Vec::new();
    match profile.get("total_wall_s").and_then(Value::as_f64) {
        Some(w) if w > 0.0 => {}
        other => failures.push(format!("total_wall_s missing or non-positive: {other:?}")),
    }
    for span in required_spans {
        let count = profile
            .get("spans_by_name")
            .and_then(|s| s.get(span))
            .and_then(|s| s.get("count"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        if count <= 0.0 {
            failures.push(format!("span {span} absent from spans_by_name"));
        }
    }
    for counter in required_counters {
        let v = profile
            .get("counters")
            .and_then(|c| c.get(counter))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        if v <= 0.0 {
            failures.push(format!("counter {counter} missing or zero"));
        }
    }
    failures
}

fn run_once(
    bin_path: &Path,
    args: &[&str],
    scratch: &Path,
    obs_path: Option<&Path>,
) -> std::io::Result<std::process::Output> {
    if scratch.exists() {
        fs::remove_dir_all(scratch)?;
    }
    fs::create_dir_all(scratch)?;
    let mut cmd = Command::new(bin_path);
    cmd.args(args)
        .env("TAC25D_RESULTS_DIR", scratch)
        .env_remove("TAC25D_TRACE")
        .env_remove("TAC25D_PROFILE");
    match obs_path {
        Some(p) => cmd.env("TAC25D_OBS", p),
        None => cmd.env_remove("TAC25D_OBS"),
    };
    cmd.output()
}

/// Runs one [`ObsSpec`]: a plain run and a `TAC25D_OBS` run with report
/// CSVs diffed byte-for-byte (when `spec.reports` is non-empty), plus
/// JSONL and profile validation against the spec's coverage requirements.
///
/// # Errors
///
/// Io errors from spawning the binary or reading its outputs. Guard
/// violations are NOT errors — they are reported in the outcome.
pub fn run_obs_determinism(spec: &ObsSpec) -> std::io::Result<ObsOutcome> {
    let bin = spec.bin;
    let mut failures = Vec::new();
    let base = workspace_root()
        .join("target")
        .join("obs-scratch")
        .join(bin);
    let plain_dir = base.join("plain");
    let obs_dir = base.join("obs");
    let bin_path = bin_dir()?.join(bin);

    if !spec.reports.is_empty() {
        let plain = run_once(&bin_path, spec.args, &plain_dir, None)?;
        if !plain.status.success() {
            failures.push(format!(
                "{bin} (plain) exited with {}: {}",
                plain.status,
                String::from_utf8_lossy(&plain.stderr)
            ));
            return Ok(ObsOutcome {
                bin: bin.to_owned(),
                failures,
            });
        }
    }
    let jsonl_path = base.join("run.jsonl");
    let with_obs = run_once(&bin_path, spec.args, &obs_dir, Some(&jsonl_path))?;
    if !with_obs.status.success() {
        failures.push(format!(
            "{bin} (TAC25D_OBS) exited with {}: {}",
            with_obs.status,
            String::from_utf8_lossy(&with_obs.stderr)
        ));
        return Ok(ObsOutcome {
            bin: bin.to_owned(),
            failures,
        });
    }

    for report in spec.reports {
        let name = format!("{report}.csv");
        let a = fs::read(plain_dir.join(&name))?;
        let b = fs::read(obs_dir.join(&name))?;
        if a != b {
            failures.push(format!(
                "{name}: CSV differs between plain and TAC25D_OBS runs — \
                 observability must not perturb results"
            ));
        }
    }

    let stream = fs::read_to_string(&jsonl_path)?;
    failures.extend(validate_jsonl(&stream));

    let profile_path = obs_dir.join("BENCH_profile.json");
    match fs::read_to_string(&profile_path) {
        Ok(text) => match json::parse(&text) {
            Ok(doc) => failures.extend(validate_profile(
                &doc,
                spec.required_spans,
                spec.required_counters,
            )),
            Err(e) => failures.push(format!("BENCH_profile.json: {e}")),
        },
        Err(e) => failures.push(format!("BENCH_profile.json unreadable: {e}")),
    }

    Ok(ObsOutcome {
        bin: bin.to_owned(),
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_jsonl_passes() {
        let stream = "\
{\"ev\":\"span_open\",\"path\":\"a\",\"t_us\":1}
{\"ev\":\"span_close\",\"path\":\"a\",\"t_us\":2,\"dur_us\":1}
{\"ev\":\"counters\",\"t_us\":3,\"counters\":{},\"gauges\":{}}
";
        assert!(validate_jsonl(stream).is_empty());
    }

    #[test]
    fn jsonl_rejects_garbage_and_missing_ev() {
        assert_eq!(validate_jsonl("not json\n").len(), 2); // bad line + no events
        assert_eq!(validate_jsonl("{\"x\":1}\n").len(), 2);
        assert_eq!(validate_jsonl("").len(), 1);
    }

    fn profile_with(spans: &str, counters: &str) -> Value {
        json::parse(&format!(
            r#"{{"total_wall_s": 1.5, "spans_by_name": {{{spans}}}, "counters": {{{counters}}}}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn complete_profile_passes() {
        let p = profile_with(
            r#""thermal.pcg_solve": {"count": 10}, "thermal.leakage_fixed_point": {"count": 5},
               "optimizer.greedy_start": {"count": 3}"#,
            r#""thermal.exact_solves": 4, "thermal.pcg_iterations": 99"#,
        );
        assert!(validate_profile(&p, REQUIRED_SPANS, REQUIRED_COUNTERS).is_empty());
    }

    #[test]
    fn missing_span_and_zero_counter_flagged() {
        let p = profile_with(
            r#""thermal.pcg_solve": {"count": 10}"#,
            r#""surrogate.predictions": 0, "thermal.pcg_iterations": 99"#,
        );
        let failures = validate_profile(
            &p,
            REQUIRED_SPANS,
            &["surrogate.predictions", "thermal.exact_solves"],
        );
        assert!(failures.iter().any(|f| f.contains("leakage_fixed_point")));
        assert!(failures.iter().any(|f| f.contains("greedy_start")));
        assert!(failures.iter().any(|f| f.contains("surrogate.predictions")));
        assert!(failures.iter().any(|f| f.contains("thermal.exact_solves")));
    }

    #[test]
    fn manifest_carries_byte_identical_guard_and_surrogate_coverage() {
        let manifest = obs_manifest();
        assert!(manifest.iter().any(|s| !s.reports.is_empty()));
        assert!(manifest
            .iter()
            .any(|s| s.required_counters.contains(&"surrogate.predictions")));
    }
}
