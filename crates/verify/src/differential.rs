//! Differential testing: the same organization corpus through the exact
//! RC solver, the thermal surrogate and the coupled leakage fixed point.
//!
//! Three views of every corpus point:
//!
//! * **linear RC** — one steady-state solve with leakage frozen at the
//!   reference temperature (the evaluator's initial guess, 60 °C);
//! * **surrogate** — the Green's-function kernel prediction (plus the
//!   corrected value when the online corrector trusts the point);
//! * **coupled** — the full temperature–leakage fixed point the paper's
//!   feasibility decisions rest on.
//!
//! The per-chiplet |ΔT| between the linear and coupled fields quantifies
//! how much the leakage feedback moves each chiplet; the surrogate deltas
//! re-measure the PR-1 fidelity-gap guarantees. [`fig8_guarantees`] runs
//! the screened-vs-exact Fig. 8 organizer per benchmark and fails on any
//! regression of the PR-1 contract (organization match, verified
//! prediction error) or of the energy-balance invariant.

use tac25d_core::prelude::*;
use tac25d_floorplan::organization::ChipletLayout;
use tac25d_floorplan::raster::place_cores;
use tac25d_floorplan::units::{Celsius, Mm};
use tac25d_power::dvfs::OperatingPoint;
use tac25d_thermal::model::PackageModel;

/// One corpus point: an organization at a fixed workload and operating
/// point.
#[derive(Debug, Clone, Copy)]
pub struct DiffPoint {
    /// The benchmark driving the power model.
    pub benchmark: Benchmark,
    /// The chiplet organization.
    pub layout: ChipletLayout,
    /// The operating point.
    pub op: OperatingPoint,
    /// Active core count.
    pub active_cores: u16,
}

/// The three-solver record of one corpus point.
#[derive(Debug, Clone)]
pub struct DiffRecord {
    /// The corpus point.
    pub point: DiffPoint,
    /// Peak of the linear RC solve (leakage frozen at 60 °C).
    pub linear_peak_c: f64,
    /// Peak of the coupled fixed point.
    pub coupled_peak_c: f64,
    /// Raw kernel-superposition prediction, if the surrogate covers the
    /// point.
    pub surrogate_raw_peak_c: Option<f64>,
    /// Corrector-adjusted prediction when trusted.
    pub surrogate_corrected_peak_c: Option<f64>,
    /// |coupled − linear| per chiplet, layout order.
    pub chiplet_abs_dt: Vec<f64>,
    /// Energy-balance residual of the coupled steady state.
    pub energy_balance_error: f64,
    /// Outer iterations of the fixed point.
    pub outer_iterations: usize,
}

impl DiffRecord {
    /// Largest per-chiplet |ΔT| of the record.
    pub fn max_chiplet_dt(&self) -> f64 {
        self.chiplet_abs_dt.iter().copied().fold(0.0, f64::max)
    }

    /// Mean per-chiplet |ΔT| of the record.
    pub fn mean_chiplet_dt(&self) -> f64 {
        if self.chiplet_abs_dt.is_empty() {
            0.0
        } else {
            self.chiplet_abs_dt.iter().sum::<f64>() / self.chiplet_abs_dt.len() as f64
        }
    }
}

/// The reference temperature at which the linear RC solve freezes leakage
/// (the evaluator's own initial fixed-point guess).
pub const LINEAR_REFERENCE: Celsius = Celsius(60.0);

/// Runs one corpus point through the three solvers.
///
/// # Errors
///
/// Propagates evaluation errors (invalid layouts, solver failures).
pub fn run_point(ev: &Evaluator, point: &DiffPoint) -> Result<DiffRecord, EvalError> {
    let spec = ev.spec();
    let profile = point.benchmark.profile();

    // Surrogate view first: evaluating below trains the corrector, and the
    // honest protocol predicts before observing.
    let prediction = ev.predict_peak(&point.layout, point.benchmark, point.op, point.active_cores);

    // Coupled fixed point (memoized exact path).
    let coupled = ev.evaluate(&point.layout, point.benchmark, point.op, point.active_cores)?;

    // Linear RC solve: same source construction as the evaluator, leakage
    // frozen at the reference temperature.
    let stack = if point.layout.is_single_chip() {
        &spec.stack_2d
    } else {
        &spec.stack_25d
    };
    let model = PackageModel::new(
        &spec.chip,
        &point.layout,
        &spec.rules,
        stack,
        spec.thermal.clone(),
    )
    .map_err(EvalError::Thermal)?;
    let placed = place_cores(&spec.chip, &point.layout, &spec.rules)?;
    let chiplet_rects = point.layout.chiplet_rects(&spec.chip, &spec.rules);
    let chip_area: f64 = chiplet_rects.iter().map(|r| r.area().value()).sum();
    let utilization =
        profile.noc_activity * f64::from(point.active_cores) / f64::from(spec.chip.core_count());
    let noc_total = spec
        .noc
        .power(
            &spec.chip,
            &point.layout,
            &spec.rules,
            point.op,
            utilization,
        )?
        .total();
    let per_core = spec
        .core_power
        .active_power(&profile, point.op, LINEAR_REFERENCE);
    let mut sources: Vec<_> = mintemp_active_cores(&spec.chip, point.active_cores)
        .iter()
        .map(|c| (placed[c.0 as usize].rect, per_core))
        .collect();
    for rect in &chiplet_rects {
        sources.push((*rect, noc_total * rect.area().value() / chip_area));
    }
    let linear = model.solve(&sources).map_err(EvalError::Thermal)?;

    let chiplet_abs_dt = chiplet_rects
        .iter()
        .zip(&coupled.chiplet_peaks)
        .map(|(rect, coupled_peak)| (coupled_peak.value() - linear.rect_max(rect).value()).abs())
        .collect();

    Ok(DiffRecord {
        point: *point,
        linear_peak_c: linear.peak().value(),
        coupled_peak_c: coupled.peak.value(),
        surrogate_raw_peak_c: prediction.as_ref().map(|p| p.raw_peak_c),
        surrogate_corrected_peak_c: prediction
            .as_ref()
            .filter(|p| p.trusted)
            .map(|p| p.corrected_peak_c),
        chiplet_abs_dt,
        energy_balance_error: coupled.energy_balance_error,
        outer_iterations: coupled.outer_iterations,
    })
}

/// A fixed multi-layout corpus: uniform 4- and 16-chiplet organizations at
/// three spacings for every benchmark, at the nominal operating point.
pub fn default_corpus(spec: &SystemSpec) -> Vec<DiffPoint> {
    let op = spec.vf.nominal();
    let mut corpus = Vec::new();
    for &benchmark in &Benchmark::all() {
        for &(r, gap) in &[(2u16, 2.0), (2, 8.0), (4, 2.0), (4, 6.0), (4, 10.0)] {
            corpus.push(DiffPoint {
                benchmark,
                layout: ChipletLayout::Uniform { r, gap: Mm(gap) },
                op,
                active_cores: 256,
            });
        }
    }
    corpus
}

/// One benchmark's screened-vs-exact Fig. 8 organizer comparison plus the
/// differential record of the exact winner.
#[derive(Debug, Clone)]
pub struct Fig8Case {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Whether the screened search chose the exact search's organization.
    pub matched: bool,
    /// `freq/cores/edge` signature of the exact winner (`-` when
    /// infeasible).
    pub exact_desc: String,
    /// Signature of the screened winner.
    pub screened_desc: String,
    /// Exact thermal solves spent by the exact search.
    pub exact_sims: usize,
    /// Exact thermal solves spent by the screened search.
    pub screened_sims: usize,
    /// Max |ΔT| over the screened search's verified predictions — the
    /// PR-1 fidelity guarantee (≤ 1 °C).
    pub max_verified_err_c: f64,
    /// Differential record of the exact winner (None when no feasible
    /// organization exists).
    pub record: Option<DiffRecord>,
}

fn signature(r: &OptimizeResult) -> Option<(u32, u16, i64)> {
    r.best.as_ref().map(|o| {
        (
            o.candidate.op.freq_mhz as u32,
            o.candidate.active_cores,
            (o.candidate.edge.value() * 2.0).round() as i64,
        )
    })
}

fn describe(r: &OptimizeResult) -> String {
    r.best.as_ref().map_or_else(
        || "-".to_owned(),
        |o| {
            format!(
                "{:.0}MHz/{}c/{:.0}mm",
                o.candidate.op.freq_mhz,
                o.candidate.active_cores,
                o.candidate.edge.value()
            )
        },
    )
}

/// Runs the Fig. 8 organizer per benchmark under both fidelities and the
/// differential solvers over every winner — the executable form of the
/// PR-1 guarantees.
///
/// # Panics
///
/// Panics if an optimize run fails outright (solver error, no baseline) —
/// those are regressions, not measurements.
pub fn fig8_guarantees(spec: &SystemSpec, seed: u64) -> Vec<Fig8Case> {
    Benchmark::all()
        .into_iter()
        .map(|b| {
            let exact_ev = Evaluator::new(spec.clone());
            let exact =
                optimize(&exact_ev, b, &OptimizerConfig::with_seed(seed)).expect("exact optimize");

            let scr_ev = Evaluator::with_surrogate(spec.clone(), SurrogateConfig::default());
            let cfg = OptimizerConfig {
                fidelity: Fidelity::surrogate_default(),
                ..OptimizerConfig::with_seed(seed)
            };
            let screened = optimize(&scr_ev, b, &cfg).expect("screened optimize");

            let record = exact.best.as_ref().map(|o| {
                let point = DiffPoint {
                    benchmark: b,
                    layout: o.layout,
                    op: o.candidate.op,
                    active_cores: o.candidate.active_cores,
                };
                run_point(&exact_ev, &point).expect("differential on the winner")
            });

            Fig8Case {
                benchmark: b,
                matched: signature(&exact) == signature(&screened),
                exact_desc: describe(&exact),
                screened_desc: describe(&screened),
                exact_sims: exact.stats.thermal_sims,
                screened_sims: screened.stats.thermal_sims,
                max_verified_err_c: screened.stats.surrogate_max_abs_error_c,
                record,
            }
        })
        .collect()
}
