//! Trace-layer gate: request-scoped tracing must be **invisible on the
//! wire** and **exact in attribution**.
//!
//! Three phases, each a separate freshly-booted daemon:
//!
//! 1. **Identity** — the pinned [`crate::servecheck::corpus`] replayed
//!    against a traced and an untraced daemon; every body must match a
//!    fresh local engine byte-for-byte (the PR-6 contract), and request
//!    identity must be header-only (`X-Request-Id` echoed, custom ids
//!    honored, minted ids present).
//! 2. **Isolation** — 8 concurrent clients evaluate 8 *distinct* layouts
//!    under chosen request ids on a fresh traced daemon sharing this
//!    process's metric registry. The per-request
//!    `thermal.pcg_iterations` deltas read back from
//!    `GET /v1/traces/{id}` must sum to the process-global counter delta
//!    across the window — a collector that smeared concurrent requests
//!    into one global aggregate would double-count and fail. Each trace
//!    must also carry exactly one exact solve and a `serve.evaluate`
//!    root span.
//! 3. **Overhead** — alternating best-of-N rounds of cache-hit requests
//!    against an untraced and a traced daemon. Tracing must cost ≤ 2%
//!    (or ≤ [`MAX_ABS_OVERHEAD_US`] per request in absolute terms —
//!    cache hits are tens of microseconds, so the ratio gate alone
//!    would demand sub-microsecond timer stability; any real request
//!    ≥ 250 µs stays under 2% at that absolute bound).

use std::sync::Arc;
use std::time::Instant;

use tac25d_core::prelude::SystemSpec;
use tac25d_obs::json::Value;
use tac25d_serve::client::Client;
use tac25d_serve::engine::EngineState;
use tac25d_serve::server::{start, ServerConfig, ServerHandle};

use crate::servecheck::{corpus, local_expected};

/// Concurrent clients in the isolation phase (mirrors
/// [`crate::servecheck::CONCURRENT_CLIENTS`]).
pub const ISOLATION_CLIENTS: usize = 8;

/// Alternating measurement rounds in the overhead phase.
pub const OVERHEAD_ROUNDS: usize = 5;

/// Cache-hit requests per daemon per round.
pub const OVERHEAD_REQUESTS_PER_ROUND: usize = 400;

/// Relative overhead bound: traced best-round time ≤ 1.02× untraced.
pub const MAX_OVERHEAD_RATIO: f64 = 1.02;

/// Absolute fallback bound, microseconds of added latency per request.
pub const MAX_ABS_OVERHEAD_US: f64 = 5.0;

/// Distinct layouts for the isolation phase: one per client so every
/// request does fresh thermal work under its own cache key (no
/// single-flight coalescing across threads, which would migrate solver
/// counters to another request's collector legitimately). All are
/// `uniform:` forms — `sym4:N` canonically aliases `uniform:2,N`, which
/// would turn one client's request into a zero-work cache hit.
const ISOLATION_LAYOUTS: [&str; ISOLATION_CLIENTS] = [
    "uniform:4,4",
    "uniform:4,5",
    "uniform:4,6",
    "uniform:4,7",
    "uniform:2,4",
    "uniform:2,5",
    "uniform:2,6",
    "uniform:2,7",
];

/// One corpus request's traced/untraced byte-identity comparison.
#[derive(Debug, Clone)]
pub struct TraceIdentityCase {
    /// Corpus case name.
    pub name: &'static str,
    /// Status from the traced daemon.
    pub traced_status: u16,
    /// Status from the untraced daemon.
    pub untraced_status: u16,
    /// Traced body == fresh local engine body.
    pub traced_match: bool,
    /// Untraced body == fresh local engine body.
    pub untraced_match: bool,
    /// Both daemons echoed an `X-Request-Id` response header.
    pub ids_echoed: bool,
}

impl TraceIdentityCase {
    /// Whether tracing was wire-invisible for this request.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.traced_status == 200
            && self.untraced_status == 200
            && self.traced_match
            && self.untraced_match
            && self.ids_echoed
    }
}

/// One isolated request's attribution, read back from the daemon.
#[derive(Debug, Clone)]
pub struct IsolationCase {
    /// The chosen `X-Request-Id`.
    pub id: String,
    /// Layout evaluated.
    pub layout: &'static str,
    /// HTTP status of the evaluate request.
    pub status: u16,
    /// `thermal.pcg_iterations` delta attributed to this request.
    pub pcg_delta: u64,
    /// `thermal.exact_solves` delta attributed to this request.
    pub exact_delta: u64,
    /// The trace's root span is `serve.evaluate`.
    pub rooted: bool,
}

impl IsolationCase {
    /// Whether this request's trace is well-formed on its own.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.status == 200 && self.pcg_delta > 0 && self.exact_delta == 1 && self.rooted
    }
}

/// The isolation phase outcome.
#[derive(Debug)]
pub struct IsolationOutcome {
    /// Per-request attributions.
    pub cases: Vec<IsolationCase>,
    /// Sum of per-request `thermal.pcg_iterations` deltas.
    pub sum_pcg: u64,
    /// Process-global `thermal.pcg_iterations` delta over the window.
    pub global_pcg_delta: u64,
}

impl IsolationOutcome {
    /// Whether attribution is exact: per-request deltas partition the
    /// global delta and every trace is well-formed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.sum_pcg == self.global_pcg_delta
            && self.global_pcg_delta > 0
            && self.cases.len() == ISOLATION_CLIENTS
            && self.cases.iter().all(IsolationCase::passed)
    }
}

/// The overhead phase outcome.
#[derive(Debug)]
pub struct OverheadOutcome {
    /// Best (minimum) round wall time for the traced daemon, µs.
    pub best_traced_us: u64,
    /// Best (minimum) round wall time for the untraced daemon, µs.
    pub best_untraced_us: u64,
    /// `best_traced_us / best_untraced_us`.
    pub ratio: f64,
    /// Added latency per request in the best rounds, µs (can be
    /// negative under timer noise).
    pub per_request_overhead_us: f64,
}

impl OverheadOutcome {
    /// Whether tracing cost is within the relative or absolute bound.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.ratio <= MAX_OVERHEAD_RATIO || self.per_request_overhead_us <= MAX_ABS_OVERHEAD_US
    }
}

/// The full `verify trace` outcome.
#[derive(Debug)]
pub struct TraceReport {
    /// Corpus identity cases (traced vs untraced vs local engine).
    pub identity: Vec<TraceIdentityCase>,
    /// A custom `X-Request-Id` was echoed back verbatim.
    pub custom_id_echoed: bool,
    /// A request without an id got a minted `req-<seq>` id.
    pub minted_id_present: bool,
    /// Concurrent-attribution outcome.
    pub isolation: IsolationOutcome,
    /// Traced-vs-untraced cost outcome.
    pub overhead: OverheadOutcome,
}

impl TraceReport {
    /// Whether every phase passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.custom_id_echoed
            && self.minted_id_present
            && self.identity.iter().all(TraceIdentityCase::passed)
            && self.isolation.passed()
            && self.overhead.passed()
    }
}

fn boot(
    spec: &SystemSpec,
    tracing: bool,
    workers: usize,
) -> Result<(ServerHandle, String), String> {
    let engine = Arc::new(EngineState::new(spec.clone()));
    let handle = start(
        ServerConfig {
            tracing,
            workers,
            ..ServerConfig::default()
        },
        engine,
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr().to_string();
    Ok((handle, addr))
}

/// Phase 1: corpus byte-identity against traced and untraced daemons,
/// plus the header-only identity probes.
fn identity_phase(spec: &SystemSpec) -> Result<(Vec<TraceIdentityCase>, bool, bool), String> {
    let requests = corpus();
    let local = EngineState::new(spec.clone());
    let expected: Vec<String> = requests
        .iter()
        .map(|r| local_expected(&local, r))
        .collect::<Result<_, _>>()?;

    let (traced_handle, traced_addr) = boot(spec, true, 0)?;
    let (untraced_handle, untraced_addr) = boot(spec, false, 0)?;
    let mut traced = Client::connect(&traced_addr).map_err(|e| format!("connect: {e}"))?;
    let mut untraced = Client::connect(&untraced_addr).map_err(|e| format!("connect: {e}"))?;

    let mut cases = Vec::with_capacity(requests.len());
    let mut minted_id_present = true;
    for (req, want) in requests.iter().zip(&expected) {
        let t = traced
            .post(req.path, req.body)
            .map_err(|e| format!("{} (traced): {e}", req.name))?;
        let u = untraced
            .post(req.path, req.body)
            .map_err(|e| format!("{} (untraced): {e}", req.name))?;
        let ids_echoed = t.header("x-request-id").is_some() && u.header("x-request-id").is_some();
        minted_id_present &= t
            .header("x-request-id")
            .is_some_and(|id| id.starts_with("req-"));
        cases.push(TraceIdentityCase {
            name: req.name,
            traced_status: t.status,
            untraced_status: u.status,
            traced_match: t.text() == *want,
            untraced_match: u.text() == *want,
            ids_echoed,
        });
    }

    // Custom ids are honored verbatim on both daemons.
    let body = r#"{"benchmark": "hpccg", "layout": "uniform:4,6"}"#;
    let custom = [("X-Request-Id", "verify-custom-id")];
    let t = traced
        .post_with("/v1/evaluate", body, &custom)
        .map_err(|e| format!("custom id (traced): {e}"))?;
    let u = untraced
        .post_with("/v1/evaluate", body, &custom)
        .map_err(|e| format!("custom id (untraced): {e}"))?;
    let custom_id_echoed = t.header("x-request-id") == Some("verify-custom-id")
        && u.header("x-request-id") == Some("verify-custom-id");

    traced_handle.shutdown();
    untraced_handle.shutdown();
    Ok((cases, custom_id_echoed, minted_id_present))
}

fn trace_counter(doc: &Value, name: &str) -> u64 {
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as u64
}

/// Phase 2: concurrent attribution on a fresh traced daemon sharing
/// this process's registry.
fn isolation_phase(spec: &SystemSpec) -> Result<IsolationOutcome, String> {
    let (handle, addr) = boot(spec, true, ISOLATION_CLIENTS)?;
    let pcg = tac25d_obs::registry::counter("thermal.pcg_iterations");

    let before = pcg.get();
    let statuses: Vec<_> = std::thread::scope(|s| {
        let threads: Vec<_> = ISOLATION_LAYOUTS
            .iter()
            .enumerate()
            .map(|(i, &layout)| {
                let addr = addr.clone();
                s.spawn(move || -> Result<u16, String> {
                    let id = format!("verify-iso-{i}");
                    let body = format!(r#"{{"benchmark": "hpccg", "layout": "{layout}"}}"#);
                    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
                    client
                        .post_with("/v1/evaluate", &body, &[("X-Request-Id", &id)])
                        .map(|r| r.status)
                        .map_err(|e| format!("{id}: {e}"))
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().map_err(|_| "client thread panicked".to_owned())?)
            .collect::<Result<_, String>>()
    })?;
    let global_pcg_delta = pcg.get() - before;

    // Read every attribution back over the wire.
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let mut cases = Vec::with_capacity(ISOLATION_CLIENTS);
    for (i, (&layout, &status)) in ISOLATION_LAYOUTS.iter().zip(&statuses).enumerate() {
        let id = format!("verify-iso-{i}");
        let r = client
            .get(&format!("/v1/traces/{id}"))
            .map_err(|e| format!("{id}: {e}"))?;
        if r.status != 200 {
            return Err(format!("{id}: GET /v1/traces/{id} returned {}", r.status));
        }
        let doc = tac25d_obs::json::parse(&r.text()).map_err(|e| format!("{id}: {e}"))?;
        let rooted = doc
            .get("spans")
            .and_then(Value::as_array)
            .is_some_and(|spans| {
                spans.len() == 1
                    && spans[0].get("name").and_then(Value::as_str) == Some("serve.evaluate")
            });
        cases.push(IsolationCase {
            id,
            layout,
            status,
            pcg_delta: trace_counter(&doc, "thermal.pcg_iterations"),
            exact_delta: trace_counter(&doc, "thermal.exact_solves"),
            rooted,
        });
    }
    handle.shutdown();

    let sum_pcg = cases.iter().map(|c| c.pcg_delta).sum();
    Ok(IsolationOutcome {
        cases,
        sum_pcg,
        global_pcg_delta,
    })
}

/// Phase 3: alternating best-of-N cache-hit rounds.
fn overhead_phase(spec: &SystemSpec) -> Result<OverheadOutcome, String> {
    let (traced_handle, traced_addr) = boot(spec, true, 2)?;
    let (untraced_handle, untraced_addr) = boot(spec, false, 2)?;
    let mut traced = Client::connect(&traced_addr).map_err(|e| format!("connect: {e}"))?;
    let mut untraced = Client::connect(&untraced_addr).map_err(|e| format!("connect: {e}"))?;

    let body = r#"{"benchmark": "hpccg", "layout": "uniform:4,6"}"#;
    let round = |client: &mut Client, label: &str| -> Result<u64, String> {
        let started = Instant::now();
        for _ in 0..OVERHEAD_REQUESTS_PER_ROUND {
            let r = client
                .post("/v1/evaluate", body)
                .map_err(|e| format!("{label}: {e}"))?;
            if r.status != 200 {
                return Err(format!("{label}: status {}", r.status));
            }
        }
        Ok(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
    };

    // Warm both caches so every measured request is a pure hit.
    round(&mut untraced, "warmup untraced")?;
    round(&mut traced, "warmup traced")?;

    let mut best_untraced_us = u64::MAX;
    let mut best_traced_us = u64::MAX;
    for _ in 0..OVERHEAD_ROUNDS {
        best_untraced_us = best_untraced_us.min(round(&mut untraced, "untraced")?);
        best_traced_us = best_traced_us.min(round(&mut traced, "traced")?);
    }
    traced_handle.shutdown();
    untraced_handle.shutdown();

    let ratio = best_traced_us as f64 / best_untraced_us as f64;
    let per_request_overhead_us =
        (best_traced_us as f64 - best_untraced_us as f64) / OVERHEAD_REQUESTS_PER_ROUND as f64;
    Ok(OverheadOutcome {
        best_traced_us,
        best_untraced_us,
        ratio,
        per_request_overhead_us,
    })
}

/// Runs all three phases.
///
/// # Errors
///
/// Returns transport or harness failures (bind, connect, local-engine
/// errors, missing traces) — environment problems, not gate
/// measurements.
pub fn trace_report(spec: &SystemSpec) -> Result<TraceReport, String> {
    let (identity, custom_id_echoed, minted_id_present) = identity_phase(spec)?;
    let isolation = isolation_phase(spec)?;
    let overhead = overhead_phase(spec)?;
    Ok(TraceReport {
        identity,
        custom_id_echoed,
        minted_id_present,
        isolation,
        overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::units::Mm;

    fn gate_spec() -> SystemSpec {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        spec.edge_step = Mm(2.0);
        spec
    }

    #[test]
    fn isolation_layouts_are_distinct_and_valid() {
        let mut seen = std::collections::BTreeSet::new();
        for layout in ISOLATION_LAYOUTS {
            assert!(seen.insert(layout), "duplicate layout {layout}");
            let body = format!(r#"{{"benchmark": "hpccg", "layout": "{layout}"}}"#);
            let v = tac25d_obs::json::parse(&body).expect("body parses");
            tac25d_serve::protocol::EvaluateRequest::from_json(&v)
                .unwrap_or_else(|e| panic!("{layout}: {e}"));
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn isolation_sums_to_the_global_delta() {
        let outcome = isolation_phase(&gate_spec()).unwrap();
        assert!(
            outcome.passed(),
            "sum {} vs global {}: {:?}",
            outcome.sum_pcg,
            outcome.global_pcg_delta,
            outcome.cases
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn identity_holds_with_and_without_tracing() {
        let (cases, custom_id_echoed, minted_id_present) = identity_phase(&gate_spec()).unwrap();
        assert!(custom_id_echoed, "custom X-Request-Id not echoed");
        assert!(minted_id_present, "minted request id missing");
        for c in &cases {
            assert!(
                c.passed(),
                "{}: traced {}/{} untraced {}/{} ids_echoed {}",
                c.name,
                c.traced_status,
                c.traced_match,
                c.untraced_status,
                c.untraced_match,
                c.ids_echoed
            );
        }
    }
}
