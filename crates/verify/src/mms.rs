//! Method-of-manufactured-solutions (MMS) harness for the thermal solver.
//!
//! The finite-volume network of `tac25d-thermal` cannot be compared against
//! arbitrary closed-form PDE solutions — but three families of analytic
//! references exercise every term of the discretization:
//!
//! 1. **Cosine fin modes** (lateral conduction + convection). A single
//!    convecting slab discretizes the screened Poisson equation
//!    `−k·t·∇²T + h·T = q″` with insulated lateral walls. The manufactured
//!    field `T(x,y) = A·cos(mπx/L)·cos(lπy/L)` satisfies the walls exactly;
//!    injecting the matching source `q″ = (k·t·λ + h)·T` and solving must
//!    reproduce `T` up to the O(Δx²) eigenvalue defect of the 5-point
//!    stencil. Grid refinement therefore shows second-order convergence —
//!    the harness measures the *observed* order.
//! 2. **1D resistance chains** (vertical conduction + convection). Uniform
//!    power through a layered slab has the closed form
//!    `ΔT = p·(R_conv + Σ R_half-layers)`, exact at any resolution.
//! 3. **Energy balance** (boundary accounting). Injected power must leave
//!    through the sink and the secondary board path, with the split given
//!    by the parallel 1D path resistances.
//!
//! All cases run through [`tac25d_thermal::slab`], the crate's public
//! source-injection / grid-refinement hooks.

use std::f64::consts::PI;
use tac25d_floorplan::layers::LayerRole;
use tac25d_thermal::slab::{SlabLayer, SlabModel, SlabStack};

/// Solver settings shared by every MMS solve: tight enough that the
/// discretization error dominates the algebraic error at all tested grids.
const REL_TOL: f64 = 1e-12;
const MAX_ITER: usize = 200_000;

/// One grid refinement of an MMS case.
#[derive(Debug, Clone, Copy)]
pub struct MmsSample {
    /// Grid cells per side.
    pub n: usize,
    /// Cell pitch, metres.
    pub dx_m: f64,
    /// Maximum absolute error against the manufactured field, kelvin.
    pub max_abs_err: f64,
    /// Root-mean-square error, kelvin.
    pub rms_err: f64,
}

/// The cosine-mode fin case: a single convecting slab with a manufactured
/// `A·cos(mπx/L)·cos(lπy/L)` temperature field.
#[derive(Debug, Clone, Copy)]
pub struct FinCase {
    /// Slab edge, metres.
    pub edge_m: f64,
    /// Slab thickness, metres.
    pub thickness_m: f64,
    /// Conductivity, W/(m·K).
    pub k: f64,
    /// Heat-transfer coefficient, W/(m²·K).
    pub htc: f64,
    /// Mode numbers (m, l) of the manufactured cosine field.
    pub modes: (usize, usize),
    /// Field amplitude, kelvin.
    pub amplitude: f64,
}

impl Default for FinCase {
    fn default() -> Self {
        // Conduction-dominated (k·t·λ ≫ h) so the eigenvalue defect of the
        // stencil — the term that converges at second order — dominates
        // the error.
        FinCase {
            edge_m: 0.02,
            thickness_m: 0.001,
            k: 100.0,
            htc: 1000.0,
            modes: (3, 2),
            amplitude: 10.0,
        }
    }
}

impl FinCase {
    /// The manufactured temperature at a point (rise over ambient, K).
    pub fn manufactured(&self, x: f64, y: f64) -> f64 {
        let (m, l) = self.modes;
        self.amplitude
            * (m as f64 * PI * x / self.edge_m).cos()
            * (l as f64 * PI * y / self.edge_m).cos()
    }

    /// The continuous eigenvalue `λ = (mπ/L)² + (lπ/L)²` of the mode.
    pub fn lambda(&self) -> f64 {
        let (m, l) = self.modes;
        let km = m as f64 * PI / self.edge_m;
        let kl = l as f64 * PI / self.edge_m;
        km * km + kl * kl
    }

    /// Solves the case at resolution `n` and returns the error sample.
    ///
    /// # Panics
    ///
    /// Panics if the linear solver fails (tolerances are fixed well below
    /// the discretization error, so this indicates a solver bug).
    pub fn solve(&self, n: usize) -> MmsSample {
        let (model, field, dx) = self.setup(n);
        let sol = model
            .solve_fields(&[&field], REL_TOL, MAX_ITER)
            .expect("MMS solve failed");
        self.measure(n, dx, &sol)
    }

    /// Solves the case at resolution `n` with the standalone geometric
    /// multigrid V-cycle and returns the error sample together with the
    /// V-cycle count — the quantity the ladder asserts is h-independent.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::solve`].
    pub fn solve_mg(&self, n: usize) -> MgMmsSample {
        let (model, field, dx) = self.setup(n);
        let sol = model
            .solve_fields_mg(&[&field], REL_TOL)
            .expect("MMS multigrid solve failed");
        MgMmsSample {
            sample: self.measure(n, dx, &sol),
            vcycles: sol.iterations(),
        }
    }

    /// Runs the case over a refinement ladder.
    pub fn refine(&self, grids: &[usize]) -> Vec<MmsSample> {
        grids.iter().map(|&n| self.solve(n)).collect()
    }

    /// Runs the multigrid refinement ladder.
    pub fn refine_mg(&self, grids: &[usize]) -> Vec<MgMmsSample> {
        grids.iter().map(|&n| self.solve_mg(n)).collect()
    }

    /// Assembles the slab model and manufactured source field at `n`.
    fn setup(&self, n: usize) -> (SlabModel, Vec<f64>, f64) {
        let stack = SlabStack {
            n,
            edge_m: self.edge_m,
            htc: self.htc,
            htc_secondary: 0.0,
            layers: vec![SlabLayer {
                is_heat_source: true,
                ..SlabLayer::new(LayerRole::HeatSink, self.thickness_m, self.k)
            }],
        };
        let model = SlabModel::assemble(&stack);
        let dx = stack.dx();
        let cell_area = dx * dx;
        let coeff = self.k * self.thickness_m * self.lambda() + self.htc;
        let mut field = vec![0.0; n * n];
        for iy in 0..n {
            for ix in 0..n {
                let (x, y) = cell_center(dx, ix, iy);
                field[iy * n + ix] = coeff * self.manufactured(x, y) * cell_area;
            }
        }
        (model, field, dx)
    }

    /// Measures the error of a solved field against the manufactured one.
    fn measure(&self, n: usize, dx: f64, sol: &tac25d_thermal::slab::SlabSolution) -> MmsSample {
        let mut max_abs = 0.0f64;
        let mut sq_sum = 0.0;
        for iy in 0..n {
            for ix in 0..n {
                let (x, y) = cell_center(dx, ix, iy);
                let err = sol.source_cell(0, ix, iy) - self.manufactured(x, y);
                max_abs = max_abs.max(err.abs());
                sq_sum += err * err;
            }
        }
        MmsSample {
            n,
            dx_m: dx,
            max_abs_err: max_abs,
            rms_err: (sq_sum / (n * n) as f64).sqrt(),
        }
    }
}

/// One rung of the multigrid refinement ladder: the error sample of the
/// standalone V-cycle solve plus the cycles it took. H-independence of
/// multigrid means `vcycles` stays flat as `n` doubles, while `max_abs_err`
/// keeps converging at second order — both are asserted by `verify
/// solver-mg`.
#[derive(Debug, Clone, Copy)]
pub struct MgMmsSample {
    /// The error sample (same fields as the PCG ladder).
    pub sample: MmsSample,
    /// Defect-correction V-cycles to reach the shared tolerance.
    pub vcycles: usize,
}

/// The max − min spread of V-cycle counts across a multigrid ladder. A
/// spread within ±2 over ≥3 grid doublings is the h-independence signature
/// (a flat count means O(N) total work).
///
/// # Panics
///
/// Panics on an empty ladder.
pub fn vcycle_spread(samples: &[MgMmsSample]) -> usize {
    let min = samples
        .iter()
        .map(|s| s.vcycles)
        .min()
        .expect("empty ladder");
    let max = samples
        .iter()
        .map(|s| s.vcycles)
        .max()
        .expect("empty ladder");
    max - min
}

fn cell_center(dx: f64, ix: usize, iy: usize) -> (f64, f64) {
    ((ix as f64 + 0.5) * dx, (iy as f64 + 0.5) * dx)
}

/// Observed convergence orders between successive refinements:
/// `p = ln(e₁/e₂) / ln(h₁/h₂)` on the max-norm errors.
///
/// # Panics
///
/// Panics on fewer than two samples or non-positive errors (an error at
/// solver-noise level means the case is too easy to measure an order).
pub fn observed_orders(samples: &[MmsSample]) -> Vec<f64> {
    assert!(samples.len() >= 2, "need at least two refinements");
    samples
        .windows(2)
        .map(|w| {
            assert!(
                w[0].max_abs_err > 0.0 && w[1].max_abs_err > 0.0,
                "errors at solver-noise level; increase the mode amplitude"
            );
            (w[0].max_abs_err / w[1].max_abs_err).ln() / (w[0].dx_m / w[1].dx_m).ln()
        })
        .collect()
}

/// A layered slab for the 1D resistance-chain invariant: the Table-I-like
/// sink / spreader / TIM / die stack (die at the bottom, powered).
pub fn chain_stack(n: usize) -> SlabStack {
    SlabStack {
        n,
        edge_m: 0.018,
        htc: 1500.0,
        htc_secondary: 0.0,
        layers: vec![
            SlabLayer::new(LayerRole::HeatSink, 0.005, 400.0),
            SlabLayer::new(LayerRole::Spreader, 0.001, 390.0),
            SlabLayer::new(LayerRole::Tim, 0.0001, 5.0),
            SlabLayer::source(LayerRole::Die, 0.0005, 120.0),
        ],
    }
}

/// Closed-form rise of the uniformly powered [`chain_stack`] die: the
/// series resistance from the die mid-plane through every layer interface
/// to ambient, per unit cell.
pub fn chain_analytic_rise(stack: &SlabStack, total_w: f64) -> f64 {
    let n2 = (stack.n * stack.n) as f64;
    let a = stack.dx() * stack.dx();
    let layers = &stack.layers;
    // Half-layer at each end of the chain, full layers in between.
    let mut r = layers[0].thickness_m / (2.0 * layers[0].k);
    for l in &layers[1..layers.len() - 1] {
        r += l.thickness_m / l.k;
    }
    let last = &layers[layers.len() - 1];
    r += last.thickness_m / (2.0 * last.k);
    (total_w / n2) * (r / a + 1.0 / (stack.htc * a))
}

/// Relative error of the solved [`chain_stack`] die temperature against
/// [`chain_analytic_rise`] at resolution `n`.
///
/// # Panics
///
/// Panics if the linear solver fails.
pub fn chain_error(n: usize, total_w: f64) -> f64 {
    let stack = chain_stack(n);
    let model = SlabModel::assemble(&stack);
    let sol = model
        .solve_uniform(total_w, REL_TOL, MAX_ITER)
        .expect("chain solve failed");
    let expect = chain_analytic_rise(&stack, total_w);
    let got = sol.source_cell(0, stack.n / 2, stack.n / 2);
    (got - expect).abs() / expect
}

/// The two-path energy-split case: a powered die with a sink chain above
/// and a substrate + board path below. Returns the solved and analytic
/// sink-path share of the total heat.
#[derive(Debug, Clone, Copy)]
pub struct SplitResult {
    /// Sink-path share of the outgoing heat, solved.
    pub solved_sink_share: f64,
    /// Sink-path share predicted by the parallel 1D resistances.
    pub analytic_sink_share: f64,
    /// Relative energy-balance residual |out − in| / in.
    pub balance_error: f64,
}

/// Solves the two-path case at resolution `n`.
///
/// # Panics
///
/// Panics if the linear solver fails.
pub fn path_split(n: usize, total_w: f64) -> SplitResult {
    let (t_sink, k_sink) = (0.005, 400.0);
    let (t_die, k_die) = (0.0005, 120.0);
    let (t_sub, k_sub) = (0.0003, 0.3);
    let (htc, htc2) = (1200.0, 40.0);
    let stack = SlabStack {
        n,
        edge_m: 0.02,
        htc,
        htc_secondary: htc2,
        layers: vec![
            SlabLayer::new(LayerRole::HeatSink, t_sink, k_sink),
            SlabLayer::source(LayerRole::Die, t_die, k_die),
            SlabLayer::new(LayerRole::Substrate, t_sub, k_sub),
        ],
    };
    let model = SlabModel::assemble(&stack);
    let sol = model
        .solve_uniform(total_w, REL_TOL, MAX_ITER)
        .expect("split solve failed");
    // Per-unit-area resistances of the two parallel paths from the die
    // mid-plane to ambient.
    let r_up = t_die / (2.0 * k_die) + t_sink / (2.0 * k_sink) + 1.0 / htc;
    let r_down = t_die / (2.0 * k_die) + t_sub / (2.0 * k_sub) + 1.0 / htc2;
    let analytic = (1.0 / r_up) / (1.0 / r_up + 1.0 / r_down);
    SplitResult {
        solved_sink_share: sol.heat_out_sink_w() / sol.heat_out_w(),
        analytic_sink_share: analytic,
        balance_error: sol.energy_balance_error(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manufactured_field_respects_walls() {
        // The cosine modes have zero normal derivative at the walls — the
        // cell-centered samples mirror across each boundary face.
        let case = FinCase::default();
        let n = 16;
        let dx = case.edge_m / n as f64;
        for iy in 0..n {
            let (x0, y) = cell_center(dx, 0, iy);
            let ghost = case.manufactured(-x0, y);
            assert!((case.manufactured(x0, y) - ghost).abs() < 1e-12);
        }
    }

    #[test]
    fn mg_ladder_is_h_independent_on_small_grids() {
        let ladder = FinCase::default().refine_mg(&[16, 32, 64]);
        let spread = vcycle_spread(&ladder);
        assert!(spread <= 2, "vcycle spread {spread}");
        let samples: Vec<_> = ladder.iter().map(|s| s.sample).collect();
        for o in observed_orders(&samples) {
            assert!(o > 1.5, "observed order {o}");
        }
    }

    #[test]
    fn orders_need_two_samples() {
        let s = FinCase::default().solve(12);
        let r = std::panic::catch_unwind(|| observed_orders(&[s]));
        assert!(r.is_err());
    }
}
