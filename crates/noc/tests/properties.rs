//! Property-based tests of the interconnect models.

use proptest::prelude::*;
use tac25d_floorplan::prelude::*;
use tac25d_noc::link::LinkParameters;
use tac25d_noc::mesh::{boundary_cuts, NocModel};
use tac25d_power::dvfs::VfTable;

proptest! {
    /// Elmore delay is monotone in length and antitone in driver size.
    #[test]
    fn delay_monotonicity(
        len in 0.1..30.0f64,
        dlen in 0.1..10.0f64,
        size in 1u32..128,
    ) {
        let p = LinkParameters::default();
        prop_assert!(p.elmore_delay(len + dlen, size) > p.elmore_delay(len, size));
        prop_assert!(p.elmore_delay(len, size * 2) < p.elmore_delay(len, size));
    }

    /// The sized link always meets its timing budget when sizing succeeds,
    /// and never uses a larger driver than necessary (the next size down
    /// must fail).
    #[test]
    fn sizing_is_minimal(len in 0.5..25.0f64, freq_ghz in 0.3..2.0f64) {
        let p = LinkParameters::default();
        let freq = freq_ghz * 1e9;
        if let Ok(link) = p.size_for_single_cycle(len, freq, 0.8) {
            prop_assert!(link.delay_s <= 0.8 / freq + 1e-15);
            if link.driver_size > 1 {
                let smaller = p.elmore_delay(len, link.driver_size / 2);
                prop_assert!(smaller > 0.8 / freq, "sizing not minimal");
            }
        }
    }

    /// Energy per transition grows with link length (more wire C).
    #[test]
    fn energy_grows_with_length(len in 1.0..20.0f64, dlen in 0.5..10.0f64) {
        let p = LinkParameters::default();
        let a = p.size_for_single_cycle(len, 1e9, 0.8).unwrap();
        let b = p.size_for_single_cycle(len + dlen, 1e9, 0.8).unwrap();
        prop_assert!(b.energy_per_transition(0.9) > a.energy_per_transition(0.9));
    }

    /// Boundary-cut link totals are conserved: cuts × links never exceed
    /// the mesh link count, and gaps are non-negative.
    #[test]
    fn cuts_conserve_links(r in prop::sample::select(vec![2u16, 4, 8, 16]), gap in 0.0..3.0f64) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let layout = ChipletLayout::Uniform { r, gap: Mm(gap) };
        prop_assume!(
            layout.interposer_edge(&chip, &rules).unwrap().value()
                <= rules.max_interposer.value()
        );
        let cuts = boundary_cuts(&chip, &layout, &rules);
        let r = u32::from(r);
        prop_assert_eq!(cuts.len() as u32, 2 * r * (r - 1));
        let total: u32 = cuts.iter().map(|c| c.links).sum();
        prop_assert_eq!(total, 2 * (r - 1) * 16);
        prop_assert!(cuts.iter().all(|c| c.gap_mm >= 0.0));
        prop_assert!(cuts.iter().all(|c| (c.gap_mm - gap).abs() < 1e-9));
    }

    /// NoC power scales linearly with utilization and is strictly positive
    /// at positive utilization.
    #[test]
    fn noc_power_linear_in_utilization(u in 0.05..1.0f64) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let layout = ChipletLayout::Uniform { r: 4, gap: Mm(3.0) };
        let m = NocModel::paper();
        let op = VfTable::paper().nominal();
        let p1 = m.power(&chip, &layout, &rules, op, u).unwrap().total();
        let p2 = m.power(&chip, &layout, &rules, op, u / 2.0).unwrap().total();
        prop_assert!(p1 > 0.0);
        prop_assert!((p1 / p2 - 2.0).abs() < 1e-9);
    }
}
