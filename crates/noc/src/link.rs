//! The inter-chiplet (interposer) link model — the HSpice substitute.
//!
//! The paper simulates the Fig. 2 lumped circuit in HSpice: a three-stage
//! driver, ESD capacitances, microbump R/L on both ends and the interposer
//! trace, and "sizes up the drivers to ensure single-cycle propagation
//! delay". We reproduce that with an analytic RLC model: Elmore delay for
//! timing, total switched capacitance for energy, and an integer driver
//! sizing loop that enlarges the final stage until the link closes timing
//! at the target clock.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Electrical constants of the interposer link (Fig. 2 values plus standard
/// 65 nm interposer-metal parasitics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParameters {
    /// Trace resistance per mm, Ω/mm.
    pub trace_res_per_mm: f64,
    /// Trace capacitance per mm, F/mm.
    pub trace_cap_per_mm: f64,
    /// Microbump resistance (per bump), Ω — Fig. 2: 0.095 Ω.
    pub bump_res: f64,
    /// Microbump inductance, H — Fig. 2: 0.053 nH (enters timing only
    /// marginally; retained for completeness).
    pub bump_ind: f64,
    /// Microbump + pad capacitance per end, F.
    pub bump_cap: f64,
    /// ESD protection capacitance per end, F.
    pub esd_cap: f64,
    /// Unit (1×) final-stage driver output resistance, Ω.
    pub driver_unit_res: f64,
    /// Unit final-stage driver self-capacitance, F.
    pub driver_unit_cap: f64,
    /// Receiver input capacitance, F.
    pub receiver_cap: f64,
    /// Maximum integer driver size the library offers.
    pub max_driver_size: u32,
}

impl Default for LinkParameters {
    fn default() -> Self {
        LinkParameters {
            trace_res_per_mm: 2.0,
            trace_cap_per_mm: 0.25e-12,
            bump_res: 0.095,
            bump_ind: 0.053e-9,
            bump_cap: 0.04e-12,
            esd_cap: 0.2e-12,
            driver_unit_res: 400.0,
            driver_unit_cap: 0.01e-12,
            receiver_cap: 0.01e-12,
            max_driver_size: 256,
        }
    }
}

/// A sized point-to-point interposer link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizedLink {
    /// Physical trace length, mm.
    pub length_mm: f64,
    /// Chosen integer driver size (multiple of the unit driver).
    pub driver_size: u32,
    /// Elmore propagation delay at that size, seconds.
    pub delay_s: f64,
    /// Total switched capacitance, F.
    pub switched_cap: f64,
}

impl SizedLink {
    /// Energy per bit *transition* at supply `vdd`: `E = C·V²` (the full
    /// CV² is dissipated per charge/discharge pair; per-transition energy
    /// of C·V²/2 × 2 transitions per cycle on average is folded into the
    /// activity factor by [`SizedLink::power`]).
    pub fn energy_per_transition(&self, vdd: f64) -> f64 {
        self.switched_cap * vdd * vdd
    }

    /// Average power of a `width`-bit link at clock `freq_hz`, supply
    /// `vdd`, and switching activity `alpha` (transitions per bit per
    /// cycle, typically ≤0.5 plus benchmark load scaling).
    pub fn power(&self, width: u32, freq_hz: f64, vdd: f64, alpha: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "activity must be in [0,1], got {alpha}"
        );
        f64::from(width) * alpha * 0.5 * self.energy_per_transition(vdd) * freq_hz
    }
}

/// Timing closure failed: even the largest driver cannot achieve
/// single-cycle propagation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingError {
    /// Link length that failed, mm.
    pub length_mm: f64,
    /// Best achievable delay, s.
    pub best_delay_s: f64,
    /// The clock period that had to be met, s.
    pub period_s: f64,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}mm link cannot close single-cycle timing: best delay {:.0}ps > period {:.0}ps",
            self.length_mm,
            self.best_delay_s * 1e12,
            self.period_s * 1e12
        )
    }
}

impl Error for TimingError {}

impl LinkParameters {
    /// Elmore delay of the link for a given driver size.
    ///
    /// Network: driver R → (driver cap + ESD + bump) → bump R → distributed
    /// trace RC → bump R → (bump + ESD + receiver caps).
    pub fn elmore_delay(&self, length_mm: f64, driver_size: u32) -> f64 {
        assert!(length_mm >= 0.0, "length must be non-negative");
        assert!(driver_size >= 1, "driver size must be at least 1");
        let r_drv = self.driver_unit_res / f64::from(driver_size);
        let c_drv = self.driver_unit_cap * f64::from(driver_size);
        let r_trace = self.trace_res_per_mm * length_mm;
        let c_trace = self.trace_cap_per_mm * length_mm;
        let c_near = c_drv + self.esd_cap + self.bump_cap;
        let c_far = self.bump_cap + self.esd_cap + self.receiver_cap;
        // Elmore: ln(2) · Σ R_upstream · C_downstream, distributed trace
        // contributes R·C/2 internally.
        let tau = r_drv * (c_near + c_trace + c_far)
            + self.bump_res * (c_trace + c_far)
            + r_trace * (c_trace / 2.0 + c_far)
            + self.bump_res * c_far;
        core::f64::consts::LN_2 * tau
    }

    /// Total switched capacitance for a given driver size.
    pub fn switched_cap(&self, length_mm: f64, driver_size: u32) -> f64 {
        self.driver_unit_cap * f64::from(driver_size)
            + 2.0 * (self.esd_cap + self.bump_cap)
            + self.trace_cap_per_mm * length_mm
            + self.receiver_cap
    }

    /// Sizes the driver up (paper Sec. III-A) until the Elmore delay fits
    /// within `timing_fraction` of the clock period at `freq_hz`.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError`] if even the maximum driver cannot close
    /// timing.
    pub fn size_for_single_cycle(
        &self,
        length_mm: f64,
        freq_hz: f64,
        timing_fraction: f64,
    ) -> Result<SizedLink, TimingError> {
        assert!(freq_hz > 0.0, "frequency must be positive");
        assert!(
            (0.0..=1.0).contains(&timing_fraction) && timing_fraction > 0.0,
            "timing fraction must be in (0,1]"
        );
        let budget = timing_fraction / freq_hz;
        let mut size = 1;
        loop {
            let delay = self.elmore_delay(length_mm, size);
            if delay <= budget {
                return Ok(SizedLink {
                    length_mm,
                    driver_size: size,
                    delay_s: delay,
                    switched_cap: self.switched_cap(length_mm, size),
                });
            }
            if size >= self.max_driver_size {
                return Err(TimingError {
                    length_mm,
                    best_delay_s: delay,
                    period_s: budget,
                });
            }
            size *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_with_length() {
        let p = LinkParameters::default();
        let d5 = p.elmore_delay(5.0, 8);
        let d15 = p.elmore_delay(15.0, 8);
        assert!(d15 > d5 * 2.0, "{d5} vs {d15}");
    }

    #[test]
    fn bigger_driver_is_faster() {
        let p = LinkParameters::default();
        assert!(p.elmore_delay(15.0, 16) < p.elmore_delay(15.0, 2));
    }

    #[test]
    fn fifteen_mm_link_closes_single_cycle_at_1ghz() {
        // Fig. 2 is a 15 mm link; the paper achieves single-cycle at 1 GHz.
        let p = LinkParameters::default();
        let link = p.size_for_single_cycle(15.0, 1e9, 0.8).unwrap();
        assert!(link.delay_s <= 0.8e-9);
        assert!(link.driver_size >= 2, "long link needs an upsized driver");
    }

    #[test]
    fn short_link_needs_small_driver() {
        let p = LinkParameters::default();
        let short = p.size_for_single_cycle(1.0, 1e9, 0.8).unwrap();
        let long = p.size_for_single_cycle(20.0, 1e9, 0.8).unwrap();
        assert!(short.driver_size <= long.driver_size);
        assert!(short.switched_cap < long.switched_cap);
    }

    #[test]
    fn timing_failure_reported() {
        let p = LinkParameters {
            max_driver_size: 1,
            ..LinkParameters::default()
        };
        let err = p.size_for_single_cycle(30.0, 5e9, 0.5).unwrap_err();
        assert!(err.best_delay_s > err.period_s);
        assert!(err.to_string().contains("cannot close"));
    }

    #[test]
    fn energy_magnitude_is_picojoules() {
        let p = LinkParameters::default();
        let link = p.size_for_single_cycle(15.0, 1e9, 0.8).unwrap();
        let e = link.energy_per_transition(0.9);
        // 15 mm at 0.25 pF/mm ≈ 3.75 pF + ends → ~3-5 pJ.
        assert!(e > 1e-12 && e < 1e-11, "energy {e}");
    }

    #[test]
    fn link_power_scales_with_width_activity_and_frequency() {
        let p = LinkParameters::default();
        let link = p.size_for_single_cycle(10.0, 1e9, 0.8).unwrap();
        let base = link.power(64, 1e9, 0.9, 0.2);
        assert!((link.power(128, 1e9, 0.9, 0.2) / base - 2.0).abs() < 1e-9);
        assert!((link.power(64, 2e9, 0.9, 0.2) / base - 2.0).abs() < 1e-9);
        assert!((link.power(64, 1e9, 0.9, 0.4) / base - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "activity must be in [0,1]")]
    fn bad_activity_rejected() {
        let p = LinkParameters::default();
        let link = p.size_for_single_cycle(1.0, 1e9, 0.8).unwrap();
        let _ = link.power(64, 1e9, 0.9, 1.5);
    }
}
