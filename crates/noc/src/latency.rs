//! Mesh latency analysis — the "network performance matched" claim.
//!
//! The paper's design point is that the 2.5D mesh keeps the single-chip
//! mesh's performance: single-cycle routers, single-cycle links, with
//! inter-chiplet links driver-sized until they also propagate in one cycle
//! (Sec. III-A: "we trade off network power to match network performance").
//! This module computes average packet latency under standard synthetic
//! traffic patterns and verifies the match explicitly: as long as every
//! boundary-crossing link closes single-cycle timing, the hop latency — and
//! therefore the average packet latency — is *identical* to the monolithic
//! mesh at the same clock.

use crate::link::TimingError;
use crate::mesh::{boundary_cuts, NocModel};
use serde::{Deserialize, Serialize};
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::organization::{ChipletLayout, PackageRules};
use tac25d_power::dvfs::OperatingPoint;

/// Synthetic traffic patterns for latency evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every source sends to every other destination uniformly.
    UniformRandom,
    /// Each core talks to its four mesh neighbours (short-haul).
    NearestNeighbor,
    /// Core (r, c) sends to core (c, r) (long diagonal hauls).
    Transpose,
}

/// Latency summary for a (layout, pattern) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Average hop count over the pattern's (src, dst) pairs.
    pub avg_hops: f64,
    /// Average zero-load packet latency in cycles (per hop: one router
    /// cycle + one link cycle), excluding serialization.
    pub avg_cycles: f64,
    /// Fraction of traversed links that cross a chiplet boundary.
    pub interposer_hop_fraction: f64,
}

/// Computes the exact average zero-load latency of X-Y dimension-ordered
/// routing on the chip's mesh for a layout and traffic pattern.
///
/// # Errors
///
/// Returns [`TimingError`] if some inter-chiplet link cannot close
/// single-cycle timing at `op` — the one condition under which the 2.5D
/// mesh would *not* match the single-chip mesh.
///
/// # Panics
///
/// Panics if the layout has no core-accurate mesh mapping.
pub fn average_latency(
    chip: &ChipSpec,
    layout: &ChipletLayout,
    rules: &PackageRules,
    model: &NocModel,
    op: OperatingPoint,
    pattern: TrafficPattern,
) -> Result<LatencyReport, TimingError> {
    // Timing check: every boundary cut must close at this clock.
    let freq_hz = op.freq_mhz * 1e6;
    for cut in boundary_cuts(chip, layout, rules) {
        model.link_params.size_for_single_cycle(
            cut.gap_mm + model.stub_mm,
            freq_hz,
            model.timing_fraction,
        )?;
    }

    let n = i64::from(chip.cores_per_row());
    let r = i64::from(layout.r());
    let per = n / r; // cores per chiplet edge (layout validated by caller)
    let crosses = |a: i64, b: i64| (a / per) != (b / per);

    let mut pairs = 0u64;
    let mut hops = 0u64;
    let mut inter_hops = 0u64;
    let mut visit = |sr: i64, sc: i64, dr: i64, dc: i64| {
        if sr == dr && sc == dc {
            return;
        }
        pairs += 1;
        // X-Y routing: walk columns first, then rows.
        let mut c = sc;
        while c != dc {
            let next = if dc > c { c + 1 } else { c - 1 };
            hops += 1;
            if crosses(c, next) {
                inter_hops += 1;
            }
            c = next;
        }
        let mut row = sr;
        while row != dr {
            let next = if dr > row { row + 1 } else { row - 1 };
            hops += 1;
            if crosses(row, next) {
                inter_hops += 1;
            }
            row = next;
        }
    };
    match pattern {
        TrafficPattern::UniformRandom => {
            for sr in 0..n {
                for sc in 0..n {
                    for dr in 0..n {
                        for dc in 0..n {
                            visit(sr, sc, dr, dc);
                        }
                    }
                }
            }
        }
        TrafficPattern::NearestNeighbor => {
            for sr in 0..n {
                for sc in 0..n {
                    for (dr, dc) in [(sr - 1, sc), (sr + 1, sc), (sr, sc - 1), (sr, sc + 1)] {
                        if (0..n).contains(&dr) && (0..n).contains(&dc) {
                            visit(sr, sc, dr, dc);
                        }
                    }
                }
            }
        }
        TrafficPattern::Transpose => {
            for sr in 0..n {
                for sc in 0..n {
                    visit(sr, sc, sc, sr);
                }
            }
        }
    }
    assert!(pairs > 0, "pattern produced no traffic");
    let avg_hops = hops as f64 / pairs as f64;
    Ok(LatencyReport {
        avg_hops,
        // One router traversal + one link traversal per hop, plus the
        // destination router.
        avg_cycles: 2.0 * avg_hops + 1.0,
        interposer_hop_fraction: inter_hops as f64 / hops.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::units::Mm;
    use tac25d_power::dvfs::VfTable;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    fn rules() -> PackageRules {
        PackageRules::default()
    }

    fn op() -> OperatingPoint {
        VfTable::paper().nominal()
    }

    #[test]
    fn uniform_random_matches_closed_form() {
        // For an n×n mesh with XY routing, uniform-random average hops
        // (excluding self-traffic) is 2·n·(n−1)·n²/(3·(n²·(n²−1)/ ...)
        // — easier: E[|Δ|] per dimension over ordered pairs.
        let r = average_latency(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            &NocModel::paper(),
            op(),
            TrafficPattern::UniformRandom,
        )
        .unwrap();
        // E[hops] = 2 * E|dx| where pairs include same-dim; for n=16 the
        // exact uniform mesh mean distance is 2*(n - 1/n)/3 over all pairs
        // including src==dst, corrected for excluded self-pairs.
        let n = 16.0f64;
        let mean_all = 2.0 * (n - 1.0 / n) / 3.0; // includes self-pairs
        let expect = mean_all * (n * n) / (n * n - 1.0);
        assert!(
            (r.avg_hops - expect).abs() < 1e-9,
            "{} vs {expect}",
            r.avg_hops
        );
    }

    #[test]
    fn latency_is_identical_across_layouts() {
        // The headline claim: single-cycle interposer links make the 2.5D
        // mesh's latency equal to the monolithic mesh's.
        let patterns = [
            TrafficPattern::UniformRandom,
            TrafficPattern::NearestNeighbor,
            TrafficPattern::Transpose,
        ];
        for pattern in patterns {
            let mono = average_latency(
                &chip(),
                &ChipletLayout::SingleChip,
                &rules(),
                &NocModel::paper(),
                op(),
                pattern,
            )
            .unwrap();
            let chiplets = average_latency(
                &chip(),
                &ChipletLayout::Uniform { r: 4, gap: Mm(8.0) },
                &rules(),
                &NocModel::paper(),
                op(),
                pattern,
            )
            .unwrap();
            assert_eq!(mono.avg_cycles, chiplets.avg_cycles, "{pattern:?}");
        }
    }

    #[test]
    fn interposer_hop_fraction_grows_with_chiplet_count() {
        let frac = |r: u16| {
            average_latency(
                &chip(),
                &ChipletLayout::Uniform { r, gap: Mm(1.0) },
                &rules(),
                &NocModel::paper(),
                op(),
                TrafficPattern::UniformRandom,
            )
            .unwrap()
            .interposer_hop_fraction
        };
        assert_eq!(
            average_latency(
                &chip(),
                &ChipletLayout::SingleChip,
                &rules(),
                &NocModel::paper(),
                op(),
                TrafficPattern::UniformRandom
            )
            .unwrap()
            .interposer_hop_fraction,
            0.0
        );
        assert!(frac(4) > frac(2));
        assert!(frac(16) > frac(4));
    }

    #[test]
    fn nearest_neighbor_is_two_hops_round() {
        let r = average_latency(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            &NocModel::paper(),
            op(),
            TrafficPattern::NearestNeighbor,
        )
        .unwrap();
        assert!((r.avg_hops - 1.0).abs() < 1e-12, "neighbours are 1 hop");
        assert!((r.avg_cycles - 3.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_has_long_hauls() {
        let t = average_latency(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            &NocModel::paper(),
            op(),
            TrafficPattern::Transpose,
        )
        .unwrap();
        let u = average_latency(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            &NocModel::paper(),
            op(),
            TrafficPattern::UniformRandom,
        )
        .unwrap();
        assert!(t.avg_hops > u.avg_hops);
    }
}
