//! The electrical mesh network-on-chip power model — the DSENT substitute.
//!
//! The example system uses a 16×16 electrical mesh with single-cycle routers
//! and single-cycle links (paper Sec. III-A). Intra-chiplet hops use
//! on-chiplet wires; hops that cross a chiplet boundary are routed through
//! the interposer using the Fig. 2 link (see [`crate::link`]), with drivers
//! sized up for single-cycle propagation.
//!
//! Constants are calibrated to the paper's anchors: the single-chip mesh
//! consumes 3.9 W and the 2.5D mesh "up to 8.4 W" at real-benchmark
//! activities (both at 1 GHz).

use crate::link::{LinkParameters, TimingError};
use serde::{Deserialize, Serialize};
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::organization::{ChipletLayout, PackageRules};
use tac25d_power::dvfs::OperatingPoint;

/// One chiplet-boundary crossing: the physical gap and the number of mesh
/// links that cross it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryCut {
    /// Distance between the facing chiplet edges, mm.
    pub gap_mm: f64,
    /// Mesh links crossing this boundary.
    pub links: u32,
}

/// Enumerates all inter-chiplet boundary cuts of a layout (empty for the
/// single-chip baseline).
///
/// # Panics
///
/// Panics if the layout's r does not divide the chip's core grid (such
/// layouts have no core-accurate mesh).
pub fn boundary_cuts(
    chip: &ChipSpec,
    layout: &ChipletLayout,
    rules: &PackageRules,
) -> Vec<BoundaryCut> {
    let r = layout.r();
    if r <= 1 {
        return Vec::new();
    }
    assert!(
        chip.divisible_by(r),
        "r = {r} does not divide the core grid; no mesh mapping exists"
    );
    let links_per_cut = u32::from(chip.cores_per_row() / r);
    let rects = layout.chiplet_rects(chip, rules);
    let r = r as usize;
    let mut cuts = Vec::new();
    for row in 0..r {
        for col in 0..r {
            let idx = row * r + col;
            if col + 1 < r {
                let right = &rects[row * r + col + 1];
                let gap = right.x0().value() - rects[idx].x1().value();
                cuts.push(BoundaryCut {
                    gap_mm: gap.max(0.0),
                    links: links_per_cut,
                });
            }
            if row + 1 < r {
                let above = &rects[(row + 1) * r + col];
                let gap = above.y0().value() - rects[idx].y1().value();
                cuts.push(BoundaryCut {
                    gap_mm: gap.max(0.0),
                    links: links_per_cut,
                });
            }
        }
    }
    cuts
}

/// Total undirected mesh link count of an n×n core grid: `2·n·(n−1)`.
pub fn mesh_link_count(cores_per_row: u16) -> u32 {
    let n = u32::from(cores_per_row);
    2 * n * (n - 1)
}

/// Breakdown of the mesh power.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NocPower {
    /// Router power, W.
    pub routers: f64,
    /// On-chiplet link power, W.
    pub onchip_links: f64,
    /// Interposer (inter-chiplet) link power, W.
    pub interposer_links: f64,
}

impl NocPower {
    /// Total mesh power, W.
    pub fn total(&self) -> f64 {
        self.routers + self.onchip_links + self.interposer_links
    }
}

/// The mesh power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocModel {
    /// Flit/link width in bits.
    pub flit_width: u32,
    /// Per-router power at (1 GHz, 0.9 V, utilization 1), W.
    pub router_peak_w: f64,
    /// Per-on-chip-link power at (1 GHz, 0.9 V, utilization 1), W.
    pub onchip_link_peak_w: f64,
    /// Electrical model of interposer links.
    pub link_params: LinkParameters,
    /// Extra routed length per interposer link beyond the chiplet gap
    /// (escape stubs on both chiplets; Fig. 2 shows 2 × 0.4 mm).
    pub stub_mm: f64,
    /// Fraction of the clock period an interposer link may use.
    pub timing_fraction: f64,
    /// Bit-level switching activity at full utilization (random data ≈ 0.5).
    pub switching_factor: f64,
}

impl NocModel {
    /// The calibrated model (see module docs).
    pub fn paper() -> Self {
        NocModel {
            flit_width: 64,
            router_peak_w: 8.3e-3,
            onchip_link_peak_w: 3.7e-3,
            link_params: LinkParameters {
                trace_cap_per_mm: 0.3e-12,
                ..LinkParameters::default()
            },
            stub_mm: 0.8,
            timing_fraction: 0.8,
            switching_factor: 0.5,
        }
    }

    /// Mesh power for a layout at operating point `op` and benchmark
    /// network utilization `utilization ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError`] if some interposer link cannot close
    /// single-cycle timing even with the largest driver (physically: the
    /// spacing is too large for the chosen clock).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]` or the layout has no
    /// core-accurate mesh mapping.
    pub fn power(
        &self,
        chip: &ChipSpec,
        layout: &ChipletLayout,
        rules: &PackageRules,
        op: OperatingPoint,
        utilization: f64,
    ) -> Result<NocPower, TimingError> {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0,1], got {utilization}"
        );
        let scale = op.voltage_ratio().powi(2) * op.freq_ratio() * utilization;
        let n_routers = f64::from(chip.core_count());
        let total_links = mesh_link_count(chip.cores_per_row());

        let cuts = boundary_cuts(chip, layout, rules);
        let inter_count: u32 = cuts.iter().map(|c| c.links).sum();
        assert!(
            inter_count <= total_links,
            "more boundary crossings than mesh links"
        );
        let onchip_count = total_links - inter_count;

        let freq_hz = op.freq_mhz * 1e6;
        let alpha = self.switching_factor * utilization;
        let mut interposer_links = 0.0;
        for cut in &cuts {
            let sized = self.link_params.size_for_single_cycle(
                cut.gap_mm + self.stub_mm,
                freq_hz,
                self.timing_fraction,
            )?;
            interposer_links +=
                f64::from(cut.links) * sized.power(self.flit_width, freq_hz, op.voltage, alpha);
        }
        Ok(NocPower {
            routers: n_routers * self.router_peak_w * scale,
            onchip_links: f64::from(onchip_count) * self.onchip_link_peak_w * scale,
            interposer_links,
        })
    }
}

impl Default for NocModel {
    fn default() -> Self {
        NocModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::organization::Spacing;
    use tac25d_floorplan::units::Mm;
    use tac25d_power::dvfs::VfTable;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    fn rules() -> PackageRules {
        PackageRules::default()
    }

    #[test]
    fn link_count_formula() {
        assert_eq!(mesh_link_count(16), 480);
        assert_eq!(mesh_link_count(2), 4);
    }

    #[test]
    fn cuts_for_single_chip_are_empty() {
        assert!(boundary_cuts(&chip(), &ChipletLayout::SingleChip, &rules()).is_empty());
    }

    #[test]
    fn cut_counts_match_grid_structure() {
        // r=4: 2 axes × 4 rows × 3 boundaries = 24 cuts of 4 links each.
        let layout = ChipletLayout::Uniform { r: 4, gap: Mm(2.0) };
        let cuts = boundary_cuts(&chip(), &layout, &rules());
        assert_eq!(cuts.len(), 24);
        let total: u32 = cuts.iter().map(|c| c.links).sum();
        assert_eq!(total, 96);
        assert!(cuts.iter().all(|c| (c.gap_mm - 2.0).abs() < 1e-9));
    }

    #[test]
    fn symmetric16_cut_gaps_vary_with_spacing() {
        let layout = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(3.0, 1.0, 2.0),
        };
        let cuts = boundary_cuts(&chip(), &layout, &rules());
        assert_eq!(cuts.len(), 24);
        let min = cuts.iter().map(|c| c.gap_mm).fold(f64::INFINITY, f64::min);
        let max = cuts.iter().map(|c| c.gap_mm).fold(0.0, f64::max);
        assert!(max > min, "non-uniform spacing must give varied gaps");
        // Inner-block gap is 2·s2 = 2 mm.
        assert!(cuts.iter().any(|c| (c.gap_mm - 2.0).abs() < 1e-9));
    }

    #[test]
    fn single_chip_mesh_consumes_about_3_9_w() {
        // Paper anchor (Sec. III-A): 3.9 W for the single-chip mesh.
        let p = NocModel::paper()
            .power(
                &chip(),
                &ChipletLayout::SingleChip,
                &rules(),
                VfTable::paper().nominal(),
                1.0,
            )
            .unwrap();
        assert_eq!(p.interposer_links, 0.0);
        assert!(
            (p.total() - 3.9).abs() < 0.2,
            "2D mesh power {:.2} W (target 3.9)",
            p.total()
        );
    }

    #[test]
    fn large_25d_mesh_consumes_up_to_8_4_w() {
        // Paper anchor: up to 8.4 W for the 2.5D mesh (largest spacings).
        let layout = ChipletLayout::Uniform {
            r: 4,
            gap: Mm(10.0),
        };
        let p = NocModel::paper()
            .power(&chip(), &layout, &rules(), VfTable::paper().nominal(), 1.0)
            .unwrap();
        assert!(
            (7.0..=9.5).contains(&p.total()),
            "2.5D mesh power {:.2} W (target ≈8.4)",
            p.total()
        );
        assert!(p.interposer_links > p.onchip_links);
    }

    #[test]
    fn noc_power_scales_down_with_dvfs_and_utilization() {
        let layout = ChipletLayout::Uniform { r: 2, gap: Mm(4.0) };
        let t = VfTable::paper();
        let m = NocModel::paper();
        let full = m
            .power(&chip(), &layout, &rules(), t.nominal(), 1.0)
            .unwrap()
            .total();
        let slow = m
            .power(
                &chip(),
                &layout,
                &rules(),
                t.at_frequency(533.0).unwrap(),
                1.0,
            )
            .unwrap()
            .total();
        let idle = m
            .power(&chip(), &layout, &rules(), t.nominal(), 0.1)
            .unwrap()
            .total();
        assert!(slow < full * 0.5);
        assert!(idle < full * 0.2);
    }

    #[test]
    fn wider_gaps_cost_more_network_power() {
        let m = NocModel::paper();
        let op = VfTable::paper().nominal();
        let p = |gap: f64| {
            m.power(
                &chip(),
                &ChipletLayout::Uniform { r: 4, gap: Mm(gap) },
                &rules(),
                op,
                0.5,
            )
            .unwrap()
            .total()
        };
        assert!(p(10.0) > p(1.0));
    }

    #[test]
    fn power_breakdown_sums() {
        let p = NocPower {
            routers: 1.0,
            onchip_links: 2.0,
            interposer_links: 3.0,
        };
        assert_eq!(p.total(), 6.0);
    }
}
