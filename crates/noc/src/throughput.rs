//! Saturation-throughput bounds for the mesh — the capacity side of the
//! "network performance matched" claim.
//!
//! Zero-load latency ([`crate::latency`]) says nothing about congestion.
//! The standard capacity bound for dimension-ordered routing is the
//! reciprocal of the maximum *channel load*: if, under a traffic pattern
//! where every node injects one flit per cycle, some directed link must
//! carry `γ_max` flits per cycle, then the network saturates at
//! `1/γ_max` flits/node/cycle. Because the 2.5D mesh keeps every link
//! single-cycle and full-width, its channel loads — and hence its
//! saturation throughput — equal the monolithic mesh's, completing the
//! performance-match argument at all load levels.

use crate::latency::TrafficPattern;
use serde::{Deserialize, Serialize};
use tac25d_floorplan::chip::ChipSpec;

/// Channel-load analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Maximum directed-channel load (flits/cycle when every node injects
    /// one flit/cycle toward the pattern).
    pub max_channel_load: f64,
    /// Saturation throughput bound, flits/node/cycle.
    pub saturation_flits_per_node_cycle: f64,
    /// Aggregate saturation bandwidth at `flit_bits` width and `freq_hz`,
    /// bits/s (all nodes).
    pub aggregate_bits_per_s: f64,
}

/// Computes channel loads of X-Y routing on the chip's mesh under a
/// pattern, and the resulting saturation bound.
///
/// # Panics
///
/// Panics if the chip has fewer than 2 cores per row.
pub fn saturation_throughput(
    chip: &ChipSpec,
    pattern: TrafficPattern,
    flit_bits: u32,
    freq_hz: f64,
) -> ThroughputReport {
    let n = chip.cores_per_row() as usize;
    assert!(n >= 2, "mesh needs at least 2 cores per row");
    // Directed channel loads: [from][to] collapsed to 4 arrays.
    // Index link (x-direction): (row, col) -> (row, col+1) as east[row][col].
    let mut east = vec![0.0f64; n * n];
    let mut west = vec![0.0f64; n * n];
    let mut north = vec![0.0f64; n * n];
    let mut south = vec![0.0f64; n * n];

    // Enumerate the pattern's (src, dst) pairs and the per-source rates.
    type Pair = ((usize, usize), (usize, usize), f64);
    let mut pairs: Vec<Pair> = Vec::new();
    match pattern {
        TrafficPattern::UniformRandom => {
            let rate = 1.0 / (n * n - 1) as f64;
            for sr in 0..n {
                for sc in 0..n {
                    for dr in 0..n {
                        for dc in 0..n {
                            if (sr, sc) != (dr, dc) {
                                pairs.push(((sr, sc), (dr, dc), rate));
                            }
                        }
                    }
                }
            }
        }
        TrafficPattern::NearestNeighbor => {
            for sr in 0..n {
                for sc in 0..n {
                    let neighbours: Vec<(usize, usize)> = [
                        (sr.wrapping_sub(1), sc),
                        (sr + 1, sc),
                        (sr, sc.wrapping_sub(1)),
                        (sr, sc + 1),
                    ]
                    .into_iter()
                    .filter(|&(r, c)| r < n && c < n)
                    .collect();
                    let rate = 1.0 / neighbours.len() as f64;
                    for d in neighbours {
                        pairs.push(((sr, sc), d, rate));
                    }
                }
            }
        }
        TrafficPattern::Transpose => {
            for sr in 0..n {
                for sc in 0..n {
                    if sr != sc {
                        pairs.push(((sr, sc), (sc, sr), 1.0));
                    }
                }
            }
        }
    }

    for ((sr, sc), (dr, dc), rate) in pairs {
        // X first.
        let mut c = sc;
        while c != dc {
            if dc > c {
                east[sr * n + c] += rate;
                c += 1;
            } else {
                c -= 1;
                west[sr * n + c] += rate;
            }
        }
        let mut r = sr;
        while r != dr {
            if dr > r {
                north[r * n + dc] += rate;
                r += 1;
            } else {
                r -= 1;
                south[r * n + dc] += rate;
            }
        }
    }
    let max_channel_load = east
        .iter()
        .chain(&west)
        .chain(&north)
        .chain(&south)
        .cloned()
        .fold(0.0, f64::max);
    let sat = if max_channel_load > 0.0 {
        (1.0 / max_channel_load).min(1.0)
    } else {
        1.0
    };
    ThroughputReport {
        max_channel_load,
        saturation_flits_per_node_cycle: sat,
        aggregate_bits_per_s: sat * (n * n) as f64 * f64::from(flit_bits) * freq_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    #[test]
    fn uniform_random_matches_bisection_bound() {
        // Classic result: uniform random on an n×n mesh with DOR saturates
        // near 4/n flits/node/cycle (half the traffic crosses the
        // bisection of n channels each way).
        let r = saturation_throughput(&chip(), TrafficPattern::UniformRandom, 64, 1e9);
        let n = 16.0;
        let expect = 4.0 / n;
        assert!(
            (r.saturation_flits_per_node_cycle - expect).abs() / expect < 0.1,
            "{} vs {expect}",
            r.saturation_flits_per_node_cycle
        );
    }

    #[test]
    fn nearest_neighbor_does_not_saturate_below_full_injection() {
        let r = saturation_throughput(&chip(), TrafficPattern::NearestNeighbor, 64, 1e9);
        assert!(
            r.saturation_flits_per_node_cycle >= 0.99,
            "short-haul traffic is link-limited only at injection: {}",
            r.saturation_flits_per_node_cycle
        );
    }

    #[test]
    fn transpose_is_harsher_than_uniform() {
        let t = saturation_throughput(&chip(), TrafficPattern::Transpose, 64, 1e9);
        let u = saturation_throughput(&chip(), TrafficPattern::UniformRandom, 64, 1e9);
        assert!(
            t.saturation_flits_per_node_cycle < u.saturation_flits_per_node_cycle,
            "transpose concentrates load: {} vs {}",
            t.saturation_flits_per_node_cycle,
            u.saturation_flits_per_node_cycle
        );
    }

    #[test]
    fn aggregate_bandwidth_scales_with_width_and_frequency() {
        let a = saturation_throughput(&chip(), TrafficPattern::UniformRandom, 64, 1e9);
        let b = saturation_throughput(&chip(), TrafficPattern::UniformRandom, 128, 2e9);
        assert!((b.aggregate_bits_per_s / a.aggregate_bits_per_s - 4.0).abs() < 1e-9);
    }
}
