#![warn(missing_docs)]

//! # tac25d-noc
//!
//! Interconnect power models for the `tac25d` reproduction of *"Leveraging
//! Thermally-Aware Chiplet Organization in 2.5D Systems to Reclaim Dark
//! Silicon"* (DATE 2018):
//!
//! * [`link`] — the Fig. 2 inter-chiplet link: analytic RLC (Elmore)
//!   timing, driver sizing for single-cycle propagation, and CV² energy —
//!   the HSpice substitute;
//! * [`mesh`] — the 16×16 electrical mesh power model (routers, on-chiplet
//!   links, interposer links) — the DSENT substitute — calibrated to the
//!   paper's 3.9 W (single chip) / up-to-8.4 W (2.5D) anchors;
//! * [`latency`] — zero-load mesh latency under synthetic traffic,
//!   verifying the "network performance matched" design point.
//!
//! # Examples
//!
//! ```
//! use tac25d_floorplan::prelude::*;
//! use tac25d_noc::mesh::NocModel;
//! use tac25d_power::dvfs::VfTable;
//!
//! let chip = ChipSpec::scc_256();
//! let layout = ChipletLayout::Uniform { r: 4, gap: Mm(4.0) };
//! let power = NocModel::paper().power(
//!     &chip, &layout, &PackageRules::default(), VfTable::paper().nominal(), 0.5)?;
//! assert!(power.total() > 0.0);
//! # Ok::<(), tac25d_noc::link::TimingError>(())
//! ```

pub mod latency;
pub mod link;
pub mod mesh;
pub mod throughput;

pub use latency::{average_latency, LatencyReport, TrafficPattern};
pub use link::{LinkParameters, SizedLink, TimingError};
pub use mesh::{boundary_cuts, mesh_link_count, NocModel, NocPower};
pub use throughput::{saturation_throughput, ThroughputReport};
