//! The daemon: a nonblocking acceptor feeding a bounded connection-intake
//! queue drained by a fixed worker pool.
//!
//! Backpressure is applied at connection granularity: when the intake
//! queue is full the acceptor answers `503` + `Retry-After: 1` and closes,
//! instead of letting latency grow without bound (counter `serve.shed`).
//! Workers poll their sockets with a short read timeout so an idle
//! keep-alive connection never blinds its worker to shutdown. SIGTERM and
//! SIGINT (via [`install_signal_handlers`]) stop the acceptor, let
//! in-flight requests finish, and then return from [`ServerHandle::join`].

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tac25d_obs as obs;
use tac25d_obs::json::parse;
use tac25d_obs::registry::prometheus_text;

use crate::engine::{EngineResult, EngineState};
use crate::http::{read_request, HttpError, Request, Response};
use crate::protocol::{EvaluateRequest, OptimizeRequest};
use crate::telemetry::{self, Endpoint, RequestRecord, StoredTrace, Telemetry};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8425` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker pool size; `0` resolves to `TAC25D_THREADS` or the machine's
    /// parallelism (at least 2, so a stalled connection cannot starve the
    /// pool entirely).
    pub workers: usize,
    /// Intake-queue capacity; connections beyond it are shed with `503`.
    pub queue_capacity: usize,
    /// Server-side deadline applied to every request (the effective
    /// deadline is the *smaller* of this and the request's `deadline_ms`).
    pub default_deadline_ms: Option<u64>,
    /// Whether evaluate/optimize requests run under a request-scoped
    /// trace collector feeding `GET /v1/traces` (≤2% overhead, gated by
    /// `verify trace`). Response bodies are identical either way.
    pub tracing: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_capacity: 64,
            default_deadline_ms: None,
            tracing: true,
        }
    }
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        obs::threads_override()
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(2)
    }
}

/// The bounded handoff between the acceptor and the workers. Connections
/// carry their enqueue instant so the worker can attribute queue wait
/// (`serve.queue_wait_us`) separately from handle time.
struct Intake {
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
    capacity: usize,
}

impl Intake {
    fn new(capacity: usize) -> Intake {
        Intake {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a connection, or returns it back when the queue is full
    /// (the caller sheds it).
    fn offer(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.queue.lock().expect("lock poisoned");
        if q.len() >= self.capacity {
            return Err(conn);
        }
        q.push_back((conn, Instant::now()));
        obs::gauge!("serve.queue_depth").set(q.len() as f64);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues a connection, waiting up to `tick`. `None` on timeout.
    fn take(&self, tick: Duration) -> Option<(TcpStream, Instant)> {
        let mut q = self.queue.lock().expect("lock poisoned");
        if q.is_empty() {
            let (guard, _) = self.ready.wait_timeout(q, tick).expect("lock poisoned");
            q = guard;
        }
        let conn = q.pop_front();
        obs::gauge!("serve.queue_depth").set(q.len() as f64);
        conn
    }

    fn is_empty(&self) -> bool {
        self.queue.lock().expect("lock poisoned").is_empty()
    }
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`] (or deliver a handled signal and
/// [`ServerHandle::join`]).
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` ephemeral binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests shutdown and waits for the drain to complete.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Waits for the daemon to stop on its own (signal-initiated
    /// shutdown).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Set by the SIGTERM/SIGINT handlers. Process-global because POSIX signal
/// handlers cannot carry state.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether a handled termination signal has arrived.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Installs SIGTERM/SIGINT handlers that flip the flag [`signalled`]
/// checks. Hand-rolled `signal(2)` binding — the workspace vendors no libc
/// crate, and the two constants are stable across Linux and macOS.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op off Unix (the daemon still stops via [`ServerHandle::shutdown`]).
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// How often blocked threads re-check the shutdown flag.
const TICK: Duration = Duration::from_millis(100);

/// Binds and starts the daemon: one acceptor thread plus the worker pool.
///
/// # Errors
///
/// Propagates bind failures.
pub fn start(config: ServerConfig, engine: Arc<EngineState>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let intake = Arc::new(Intake::new(config.queue_capacity));
    let telemetry = Arc::new(Telemetry::new(config.tracing));
    let mut threads = Vec::new();

    {
        let stop = Arc::clone(&stop);
        let intake = Arc::clone(&intake);
        threads.push(
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &intake, &stop))
                .expect("spawn acceptor"),
        );
    }
    {
        let stop = Arc::clone(&stop);
        let telemetry = Arc::clone(&telemetry);
        threads.push(
            std::thread::Builder::new()
                .name("serve-history".into())
                .spawn(move || history_loop(&telemetry, &stop))
                .expect("spawn history sampler"),
        );
    }
    for i in 0..config.resolved_workers() {
        let stop = Arc::clone(&stop);
        let intake = Arc::clone(&intake);
        let engine = Arc::clone(&engine);
        let telemetry = Arc::clone(&telemetry);
        let config = config.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&intake, &engine, &config, &telemetry, &stop))
                .expect("spawn worker"),
        );
    }

    Ok(ServerHandle {
        local_addr,
        stop,
        threads,
    })
}

/// Samples the registry into the `/metrics/history` ring at the
/// env-selected interval. One sample is taken immediately so the
/// endpoint is never empty once the daemon is up.
fn history_loop(telemetry: &Telemetry, stop: &AtomicBool) {
    let interval = Duration::from_millis(telemetry.history.interval_ms());
    telemetry.history.sample_registry();
    let mut last = Instant::now();
    while !stopping(stop) {
        std::thread::sleep(TICK.min(interval));
        if last.elapsed() >= interval {
            telemetry.history.sample_registry();
            last = Instant::now();
        }
    }
}

fn stopping(stop: &AtomicBool) -> bool {
    stop.load(Ordering::SeqCst) || signalled()
}

fn acceptor_loop(listener: &TcpListener, intake: &Intake, stop: &AtomicBool) {
    while !stopping(stop) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                if let Err(mut shed) = intake.offer(conn) {
                    obs::counter!("serve.shed").inc();
                    let resp =
                        Response::json(503, r#"{"error":"intake queue full, retry shortly"}"#)
                            .with_header("Retry-After", "1");
                    let _ = resp.write_to(&mut shed, true);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(
    intake: &Intake,
    engine: &EngineState,
    config: &ServerConfig,
    telemetry: &Telemetry,
    stop: &AtomicBool,
) {
    loop {
        match intake.take(TICK) {
            Some((conn, queued_at)) => {
                static BUSY: std::sync::atomic::AtomicUsize =
                    std::sync::atomic::AtomicUsize::new(0);
                let busy = BUSY.fetch_add(1, Ordering::Relaxed) + 1;
                obs::gauge!("serve.busy_workers").set(busy as f64);
                let queue_wait_us =
                    queued_at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                obs::histogram!("serve.queue_wait_us").record(queue_wait_us);
                handle_connection(conn, engine, config, telemetry, stop, queue_wait_us);
                let busy = BUSY.fetch_sub(1, Ordering::Relaxed) - 1;
                obs::gauge!("serve.busy_workers").set(busy as f64);
            }
            // Drain semantics: keep serving queued connections after the
            // stop flag flips; exit once the queue is empty.
            None => {
                if stopping(stop) && intake.is_empty() {
                    return;
                }
            }
        }
    }
}

fn handle_connection(
    mut conn: TcpStream,
    engine: &EngineState,
    config: &ServerConfig,
    telemetry: &Telemetry,
    stop: &AtomicBool,
    queue_wait_us: u64,
) {
    if conn.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    let _ = conn.set_nodelay(true);
    let mut carry = Vec::new();
    // Queue wait belongs to the first request on the connection; keep-alive
    // follow-ups were never queued.
    let mut first_queue_wait_us = queue_wait_us;
    loop {
        let request = match read_request(&mut conn, &mut carry) {
            Ok(r) => r,
            Err(HttpError::Timeout) => {
                // Idle keep-alive poll tick: close on shutdown, else keep
                // waiting for the next request.
                if stopping(stop) {
                    return;
                }
                continue;
            }
            Err(HttpError::Eof) | Err(HttpError::Io(_)) => return,
            Err(HttpError::HeadTooLarge) => {
                let _ = Response::json(431, r#"{"error":"request head too large"}"#)
                    .write_to(&mut conn, true);
                return;
            }
            Err(HttpError::BodyTooLarge) => {
                let _ = Response::json(413, r#"{"error":"request body too large"}"#)
                    .write_to(&mut conn, true);
                return;
            }
            Err(HttpError::BadRequest(m)) => {
                let body =
                    tac25d_obs::json::obj([("error", tac25d_obs::json::Value::String(m))]).render();
                let _ = Response::json(400, body).write_to(&mut conn, true);
                return;
            }
        };
        let id = telemetry::request_id(request.header("x-request-id"));
        let endpoint = Endpoint::of(&request.method, &request.path);
        let traced = telemetry.tracing && endpoint.traceable();
        let started = Instant::now();
        if traced {
            obs::trace::begin();
        }
        let response = dispatch(engine, config, telemetry, &request);
        let capture = if traced { obs::trace::finish() } else { None };
        let handle_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        obs::counter!("serve.requests").inc();
        if response.status == 504 {
            obs::counter!("serve.deadline_hits").inc();
        }
        // Unchanged semantics (dispatch time, probes included) so the
        // committed serve baselines stay comparable; the per-endpoint
        // split below is the probe-free surface.
        obs::histogram!("serve.request_latency_us").record(handle_us);
        telemetry::handle_histogram(endpoint, response.status).record(handle_us);
        let record = RequestRecord {
            id: id.clone(),
            method: request.method.clone(),
            path: request.path.clone(),
            endpoint,
            status: response.status,
            queue_wait_us: std::mem::take(&mut first_queue_wait_us),
            handle_us,
            bytes_out: response.body.len(),
        };
        let t_us = obs::uptime().as_micros().min(u128::from(u64::MAX)) as u64;
        if let Some(capture) = capture {
            telemetry.traces.offer(StoredTrace {
                record: record.clone(),
                t_us,
                capture,
            });
        }
        telemetry::log_access(&record, t_us);
        // Identity is echoed header-only, and unconditionally (traced and
        // untraced daemons answer identically on the wire modulo the id
        // value itself): bodies stay byte-identical to `query --local`.
        let response = response.with_header("X-Request-Id", id);
        let close = request.wants_close() || stopping(stop);
        if response.write_to(&mut conn, close).is_err() || close {
            return;
        }
    }
}

/// Routes one request. Transport-agnostic, so tests can call it directly.
pub fn dispatch(
    engine: &EngineState,
    config: &ServerConfig,
    telemetry: &Telemetry,
    request: &Request,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, r#"{"status":"ok"}"#),
        ("GET", "/metrics") => Response::text(200, prometheus_text()),
        ("GET", "/metrics/history") => Response::json(200, telemetry.history.to_json().render()),
        ("GET", "/v1/traces") => Response::json(200, telemetry.traces.list_json().render()),
        ("GET", path) if path.starts_with("/v1/traces/") => {
            let id = &path["/v1/traces/".len()..];
            match telemetry.traces.get(id) {
                Some(trace) => Response::json(200, trace.to_json().render()),
                None => Response::json(404, r#"{"error":"no stored trace with that id"}"#),
            }
        }
        ("POST", "/v1/evaluate") => json_endpoint(request, |v, received| {
            let req = EvaluateRequest::from_json(v)?;
            let deadline = effective_deadline(req.deadline_ms, config, received);
            Ok(engine.evaluate(&req, deadline))
        }),
        ("POST", "/v1/optimize") => json_endpoint(request, |v, received| {
            let req = OptimizeRequest::from_json(v)?;
            let deadline = effective_deadline(req.deadline_ms, config, received);
            Ok(engine.optimize(&req, deadline))
        }),
        ("GET" | "POST", _) => Response::json(404, r#"{"error":"no such endpoint"}"#),
        _ => Response::json(405, r#"{"error":"method not allowed"}"#),
    }
}

/// The effective deadline: the *earlier* of the request's `deadline_ms`
/// and the server default, both measured from request receipt.
fn effective_deadline(
    requested_ms: Option<u64>,
    config: &ServerConfig,
    received: Instant,
) -> Option<Instant> {
    let ms = match (requested_ms, config.default_deadline_ms) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    ms.map(|ms| received + Duration::from_millis(ms))
}

fn json_endpoint<F>(request: &Request, run: F) -> Response
where
    F: FnOnce(&tac25d_obs::json::Value, Instant) -> Result<EngineResult, String>,
{
    let received = Instant::now();
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::json(400, r#"{"error":"body is not UTF-8"}"#);
    };
    let value = match parse(text) {
        Ok(v) => v,
        Err(e) => {
            let body = tac25d_obs::json::obj([(
                "error",
                tac25d_obs::json::Value::String(format!("invalid JSON: {e}")),
            )])
            .render();
            return Response::json(400, body);
        }
    };
    match run(&value, received) {
        Ok(result) => Response::json(result.status, result.body),
        Err(message) => {
            let body = tac25d_obs::json::obj([("error", tac25d_obs::json::Value::String(message))])
                .render();
            Response::json(422, body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn engine() -> Arc<EngineState> {
        let mut spec = tac25d_core::prelude::SystemSpec::fast();
        spec.thermal.grid = 16;
        Arc::new(EngineState::new(spec))
    }

    #[test]
    fn dispatch_routes_and_rejects() {
        let engine = engine();
        let config = ServerConfig::default();
        let tel = Telemetry::new(true);
        let route = |method: &str, path: &str, body: &str| {
            dispatch(&engine, &config, &tel, &request(method, path, body)).status
        };
        assert_eq!(route("GET", "/healthz", ""), 200);
        assert_eq!(route("GET", "/metrics", ""), 200);
        assert_eq!(route("GET", "/metrics/history", ""), 200);
        assert_eq!(route("GET", "/v1/traces", ""), 200);
        assert_eq!(route("GET", "/v1/traces/req-missing", ""), 404);
        assert_eq!(route("GET", "/nope", ""), 404);
        assert_eq!(route("DELETE", "/healthz", ""), 405);
        assert_eq!(route("POST", "/v1/evaluate", "{not json"), 400);
        assert_eq!(route("POST", "/v1/evaluate", "{}"), 422);
    }

    #[test]
    fn history_and_trace_endpoints_serve_valid_json() {
        let engine = engine();
        let config = ServerConfig::default();
        let tel = Telemetry::new(true);
        tel.history.sample_registry();
        let history = dispatch(
            &engine,
            &config,
            &tel,
            &request("GET", "/metrics/history", ""),
        );
        let v = parse(std::str::from_utf8(&history.body).expect("utf8")).expect("history parses");
        assert!(!v
            .get("samples")
            .and_then(tac25d_obs::json::Value::as_array)
            .expect("samples")
            .is_empty());
        let list = dispatch(&engine, &config, &tel, &request("GET", "/v1/traces", ""));
        let v = parse(std::str::from_utf8(&list.body).expect("utf8")).expect("traces parse");
        assert!(v
            .get("traces")
            .and_then(tac25d_obs::json::Value::as_array)
            .is_some());
    }

    #[test]
    fn effective_deadline_takes_the_minimum() {
        let t0 = Instant::now();
        let cfg = |d| ServerConfig {
            default_deadline_ms: d,
            ..ServerConfig::default()
        };
        assert_eq!(effective_deadline(None, &cfg(None), t0), None);
        assert_eq!(
            effective_deadline(Some(100), &cfg(None), t0),
            Some(t0 + Duration::from_millis(100))
        );
        assert_eq!(
            effective_deadline(None, &cfg(Some(200)), t0),
            Some(t0 + Duration::from_millis(200))
        );
        assert_eq!(
            effective_deadline(Some(500), &cfg(Some(200)), t0),
            Some(t0 + Duration::from_millis(200)),
            "server default bounds the request"
        );
    }
}
