//! The wire protocol: request parsing and the shared layout grammar.
//!
//! Requests are JSON objects parsed with [`tac25d_obs::json`]. Layouts use
//! the CLI's textual grammar (`2d | uniform:<r>,<gap-mm> | sym4:<s3> |
//! sym16:<s1>,<s2>,<s3>`) so a request body can be assembled from the same
//! strings the `tac25d` subcommands take; [`parse_layout`] is the single
//! parser both sides share.

use tac25d_floorplan::organization::{ChipletLayout, Spacing};
use tac25d_floorplan::units::Mm;
use tac25d_obs::json::Value;
use tac25d_power::benchmarks::Benchmark;

/// Parses the CLI/service layout grammar.
///
/// # Errors
///
/// Returns a human-readable message for unknown kinds or malformed
/// parameter lists.
pub fn parse_layout(s: &str) -> Result<ChipletLayout, String> {
    let (kind, params) = s.split_once(':').unwrap_or((s, ""));
    let nums = || -> Result<Vec<f64>, String> {
        params
            .split(',')
            .filter(|p| !p.is_empty())
            .map(|p| {
                p.parse::<f64>()
                    .map_err(|e| format!("bad number {p:?}: {e}"))
            })
            .collect()
    };
    match kind {
        "2d" => Ok(ChipletLayout::SingleChip),
        "uniform" => {
            let v = nums()?;
            if v.len() != 2 {
                return Err("uniform needs <r>,<gap>".into());
            }
            Ok(ChipletLayout::Uniform {
                r: v[0] as u16,
                gap: Mm(v[1]),
            })
        }
        "sym4" => {
            let v = nums()?;
            if v.len() != 1 {
                return Err("sym4 needs <s3>".into());
            }
            Ok(ChipletLayout::Symmetric4 { s3: Mm(v[0]) })
        }
        "sym16" => {
            let v = nums()?;
            if v.len() != 3 {
                return Err("sym16 needs <s1>,<s2>,<s3>".into());
            }
            Ok(ChipletLayout::Symmetric16 {
                spacing: Spacing::new(v[0], v[1], v[2]),
            })
        }
        other => Err(format!("unknown layout kind {other:?}")),
    }
}

/// Renders a layout back into the grammar [`parse_layout`] accepts, so a
/// response's `layout` field can be pasted into the next request.
/// Round-trip stable: `parse_layout(&layout_grammar(&l))` reproduces `l`
/// exactly (millimetre values print via `f64`'s shortest round-trip
/// formatting).
pub fn layout_grammar(layout: &ChipletLayout) -> String {
    match layout {
        ChipletLayout::SingleChip => "2d".to_owned(),
        ChipletLayout::Uniform { r, gap } => format!("uniform:{r},{}", gap.value()),
        ChipletLayout::Symmetric4 { s3 } => format!("sym4:{}", s3.value()),
        ChipletLayout::Symmetric16 { spacing } => format!(
            "sym16:{},{},{}",
            spacing.s1.value(),
            spacing.s2.value(),
            spacing.s3.value()
        ),
    }
}

/// Parses a benchmark name.
///
/// # Errors
///
/// Returns a message listing nothing when the name is unknown.
pub fn parse_benchmark(name: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name:?}"))
}

fn required_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .ok_or_else(|| format!("{key:?} is required"))?
        .as_str()
        .ok_or_else(|| format!("{key:?} must be a string"))
}

fn optional_f64(v: &Value, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(x) => x
            .as_f64()
            .ok_or_else(|| format!("{key:?} must be a number")),
    }
}

fn optional_bool(v: &Value, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(x) => x
            .as_bool()
            .ok_or_else(|| format!("{key:?} must be a boolean")),
    }
}

fn optional_deadline_ms(v: &Value) -> Result<Option<u64>, String> {
    match v.get("deadline_ms") {
        None | Some(Value::Null) => Ok(None),
        Some(x) => {
            let ms = x
                .as_f64()
                .filter(|m| m.is_finite() && *m >= 0.0)
                .ok_or("\"deadline_ms\" must be a non-negative number")?;
            Ok(Some(ms as u64))
        }
    }
}

/// `POST /v1/evaluate` — one organization at one operating point.
#[derive(Debug, Clone)]
pub struct EvaluateRequest {
    /// Benchmark to evaluate.
    pub benchmark: Benchmark,
    /// Organization, in the shared layout grammar.
    pub layout: ChipletLayout,
    /// Clock frequency; must name a VF-table point. Default 1000.
    pub freq_mhz: f64,
    /// Active core count. Default 256.
    pub cores: u16,
    /// Feasibility threshold, °C. Default 85.
    pub threshold_c: f64,
    /// Client deadline in milliseconds, bounded by the server default.
    pub deadline_ms: Option<u64>,
}

impl EvaluateRequest {
    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for missing or mistyped fields.
    pub fn from_json(v: &Value) -> Result<EvaluateRequest, String> {
        if v.as_object().is_none() {
            return Err("request body must be a JSON object".into());
        }
        Ok(EvaluateRequest {
            benchmark: parse_benchmark(required_str(v, "benchmark")?)?,
            layout: parse_layout(required_str(v, "layout")?)?,
            freq_mhz: optional_f64(v, "freq_mhz", 1000.0)?,
            cores: optional_f64(v, "cores", 256.0)? as u16,
            threshold_c: optional_f64(v, "threshold_c", 85.0)?,
            deadline_ms: optional_deadline_ms(v)?,
        })
    }
}

/// `POST /v1/optimize` — a full organizer run.
#[derive(Debug, Clone)]
pub struct OptimizeRequest {
    /// Benchmark to optimize for.
    pub benchmark: Benchmark,
    /// Performance weight α. Default 1.
    pub alpha: f64,
    /// Cost weight β. Default 0.
    pub beta: f64,
    /// Multi-start greedy start count. Default 10.
    pub starts: usize,
    /// Search seed — per-request, so clients control reproducibility.
    /// Default 42.
    pub seed: u64,
    /// Feasibility threshold, °C. Default 85.
    pub threshold_c: f64,
    /// Restrict to organizations at or below the single-chip cost.
    pub iso_cost: bool,
    /// Exhaustive search instead of multi-start greedy.
    pub exhaustive: bool,
    /// Client deadline in milliseconds, bounded by the server default.
    pub deadline_ms: Option<u64>,
}

impl OptimizeRequest {
    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for missing or mistyped fields.
    pub fn from_json(v: &Value) -> Result<OptimizeRequest, String> {
        if v.as_object().is_none() {
            return Err("request body must be a JSON object".into());
        }
        Ok(OptimizeRequest {
            benchmark: parse_benchmark(required_str(v, "benchmark")?)?,
            alpha: optional_f64(v, "alpha", 1.0)?,
            beta: optional_f64(v, "beta", 0.0)?,
            starts: optional_f64(v, "starts", 10.0)? as usize,
            seed: optional_f64(v, "seed", 42.0)? as u64,
            threshold_c: optional_f64(v, "threshold_c", 85.0)?,
            iso_cost: optional_bool(v, "iso_cost", false)?,
            exhaustive: optional_bool(v, "exhaustive", false)?,
            deadline_ms: optional_deadline_ms(v)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_obs::json::parse;

    #[test]
    fn layout_grammar_round_trips_the_cli_forms() {
        assert!(matches!(
            parse_layout("2d").unwrap(),
            ChipletLayout::SingleChip
        ));
        assert!(matches!(
            parse_layout("uniform:4,6").unwrap(),
            ChipletLayout::Uniform { r: 4, .. }
        ));
        assert!(matches!(
            parse_layout("sym4:5").unwrap(),
            ChipletLayout::Symmetric4 { .. }
        ));
        assert!(matches!(
            parse_layout("sym16:4,2,5").unwrap(),
            ChipletLayout::Symmetric16 { .. }
        ));
        assert!(parse_layout("hex:1").is_err());
        assert!(parse_layout("uniform:4").is_err());
    }

    #[test]
    fn grammar_rendering_round_trips() {
        for s in ["2d", "uniform:4,6.5", "sym4:5.25", "sym16:4,2.5,5"] {
            let layout = parse_layout(s).unwrap();
            let rendered = layout_grammar(&layout);
            assert_eq!(parse_layout(&rendered).unwrap(), layout, "via {rendered}");
        }
    }

    #[test]
    fn evaluate_request_defaults_and_overrides() {
        let v = parse(r#"{"benchmark": "shock", "layout": "uniform:4,6"}"#).unwrap();
        let r = EvaluateRequest::from_json(&v).unwrap();
        assert_eq!(r.freq_mhz, 1000.0);
        assert_eq!(r.cores, 256);
        assert_eq!(r.threshold_c, 85.0);
        assert_eq!(r.deadline_ms, None);

        let v = parse(
            r#"{"benchmark": "hpccg", "layout": "2d", "freq_mhz": 533,
                "cores": 128, "threshold_c": 80, "deadline_ms": 250}"#,
        )
        .unwrap();
        let r = EvaluateRequest::from_json(&v).unwrap();
        assert_eq!(r.freq_mhz, 533.0);
        assert_eq!(r.cores, 128);
        assert_eq!(r.threshold_c, 80.0);
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn evaluate_request_rejects_bad_fields() {
        for body in [
            r#"[1, 2]"#,
            r#"{"layout": "2d"}"#,
            r#"{"benchmark": "shock"}"#,
            r#"{"benchmark": "nope", "layout": "2d"}"#,
            r#"{"benchmark": "shock", "layout": "hex:1"}"#,
            r#"{"benchmark": "shock", "layout": "2d", "deadline_ms": -5}"#,
            r#"{"benchmark": "shock", "layout": "2d", "cores": "many"}"#,
        ] {
            let v = parse(body).unwrap();
            assert!(EvaluateRequest::from_json(&v).is_err(), "accepted {body}");
        }
    }

    #[test]
    fn optimize_request_defaults() {
        let v = parse(r#"{"benchmark": "cholesky"}"#).unwrap();
        let r = OptimizeRequest::from_json(&v).unwrap();
        assert_eq!(r.alpha, 1.0);
        assert_eq!(r.beta, 0.0);
        assert_eq!(r.starts, 10);
        assert_eq!(r.seed, 42);
        assert!(!r.iso_cost);
        assert!(!r.exhaustive);
    }
}
