//! Request-scoped telemetry for the daemon: request identity, per-endpoint
//! latency breakdowns, the slow-request exemplar store behind
//! `GET /v1/traces`, and the optional JSONL access log.
//!
//! Request identity is **header-only**: the id arrives via `X-Request-Id`
//! (or is minted as `req-<seq>`) and leaves as the same response header.
//! Response *bodies* never mention it, so the PR 6 byte-identity contract
//! — daemon responses byte-equal to a one-shot `query --local` — is
//! untouched; `verify trace` pins this against an untraced daemon.
//!
//! Latency is split into **queue wait** (accept → worker dequeue, visible
//! as `serve.queue_wait_us`) and **handle time** (read complete →
//! response ready, recorded per endpoint × status class, e.g.
//! `serve.evaluate.2xx_handle_us`). Probe endpoints (`/healthz`,
//! `/metrics*`, `/v1/traces*`) keep their own bucket so scrapes cannot
//! skew the evaluate/optimize distributions.

use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tac25d_obs as obs;
use tac25d_obs::history::History;
use tac25d_obs::json::{obj, Value};
use tac25d_obs::trace::TraceCapture;

/// Exemplars retained per endpoint (top-K by handle time).
pub const EXEMPLARS_PER_ENDPOINT: usize = 16;

/// Maximum accepted length of a client-supplied `X-Request-Id`.
pub const MAX_REQUEST_ID_LEN: usize = 128;

/// Endpoint class for latency breakdowns and trace eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/evaluate`.
    Evaluate,
    /// `POST /v1/optimize`.
    Optimize,
    /// Health/metrics/trace scrapes — excluded from the evaluate/optimize
    /// breakdowns so probes cannot skew them.
    Probe,
    /// Everything else (404s, bad methods).
    Other,
}

impl Endpoint {
    /// Classifies a request.
    pub fn of(method: &str, path: &str) -> Endpoint {
        match (method, path) {
            ("POST", "/v1/evaluate") => Endpoint::Evaluate,
            ("POST", "/v1/optimize") => Endpoint::Optimize,
            ("GET", "/healthz" | "/metrics" | "/metrics/history" | "/v1/traces") => Endpoint::Probe,
            ("GET", p) if p.starts_with("/v1/traces/") => Endpoint::Probe,
            _ => Endpoint::Other,
        }
    }

    /// Stable lowercase name used in metric names and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Evaluate => "evaluate",
            Endpoint::Optimize => "optimize",
            Endpoint::Probe => "probe",
            Endpoint::Other => "other",
        }
    }

    /// Whether requests to this endpoint get a trace collector.
    pub fn traceable(self) -> bool {
        matches!(self, Endpoint::Evaluate | Endpoint::Optimize)
    }
}

/// Status class label (`2xx`, `4xx`, ...) for metric names.
pub fn status_class(status: u16) -> &'static str {
    match status / 100 {
        1 => "1xx",
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        _ => "5xx",
    }
}

/// The per-endpoint × status-class handle-time histogram, e.g.
/// `serve.evaluate.2xx_handle_us`. Handles are cached in a static table
/// so the per-request cost is an index, not a registry lock.
pub fn handle_histogram(endpoint: Endpoint, status: u16) -> &'static Arc<obs::registry::Histogram> {
    static TABLE: OnceLock<Vec<Arc<obs::registry::Histogram>>> = OnceLock::new();
    const ENDPOINTS: [Endpoint; 4] = [
        Endpoint::Evaluate,
        Endpoint::Optimize,
        Endpoint::Probe,
        Endpoint::Other,
    ];
    const CLASSES: [&str; 5] = ["1xx", "2xx", "3xx", "4xx", "5xx"];
    let table = TABLE.get_or_init(|| {
        ENDPOINTS
            .iter()
            .flat_map(|e| {
                CLASSES.iter().map(|c| {
                    obs::registry::histogram(&format!("serve.{}.{c}_handle_us", e.as_str()))
                })
            })
            .collect()
    });
    let e_idx = ENDPOINTS.iter().position(|&e| e == endpoint).unwrap_or(3);
    let c_idx = CLASSES
        .iter()
        .position(|&c| c == status_class(status))
        .unwrap_or(4);
    &table[e_idx * CLASSES.len() + c_idx]
}

/// Mints a deterministic request id: `req-1`, `req-2`, ... in arrival
/// order within the process.
pub fn mint_request_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!("req-{}", SEQ.fetch_add(1, Ordering::Relaxed) + 1)
}

/// The request's identity: a sane client-supplied `X-Request-Id` verbatim,
/// otherwise a minted `req-<seq>`. Sanity = non-empty, at most
/// [`MAX_REQUEST_ID_LEN`] visible-ASCII characters (header injection and
/// log forgery stay impossible).
pub fn request_id(header: Option<&str>) -> String {
    match header {
        Some(v)
            if !v.is_empty()
                && v.len() <= MAX_REQUEST_ID_LEN
                && v.bytes().all(|b| b.is_ascii_graphic()) =>
        {
            v.to_owned()
        }
        _ => mint_request_id(),
    }
}

/// Everything recorded about one finished request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request id (echoed as `X-Request-Id`).
    pub id: String,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Endpoint class.
    pub endpoint: Endpoint,
    /// Response status.
    pub status: u16,
    /// Accept-to-dequeue wait, microseconds (0 for keep-alive follow-ups).
    pub queue_wait_us: u64,
    /// Dispatch time, microseconds.
    pub handle_us: u64,
    /// Response body bytes.
    pub bytes_out: usize,
}

/// One stored exemplar: the request record plus its trace capture.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The request's telemetry record.
    pub record: RequestRecord,
    /// Completion time, microseconds since the obs epoch.
    pub t_us: u64,
    /// The captured span tree + counter deltas.
    pub capture: TraceCapture,
}

impl StoredTrace {
    fn summary_fields(&self) -> Vec<(String, Value)> {
        vec![
            ("id".to_owned(), Value::String(self.record.id.clone())),
            (
                "endpoint".to_owned(),
                Value::String(self.record.endpoint.as_str().to_owned()),
            ),
            (
                "status".to_owned(),
                Value::Number(f64::from(self.record.status)),
            ),
            ("t_us".to_owned(), Value::Number(self.t_us as f64)),
            (
                "queue_wait_us".to_owned(),
                Value::Number(self.record.queue_wait_us as f64),
            ),
            (
                "handle_us".to_owned(),
                Value::Number(self.record.handle_us as f64),
            ),
            (
                "bytes_out".to_owned(),
                Value::Number(self.record.bytes_out as f64),
            ),
            (
                "span_count".to_owned(),
                Value::Number(self.capture.nodes.len() as f64),
            ),
        ]
    }

    /// Full JSON document for `GET /v1/traces/{id}`: the summary fields
    /// plus the capture's counters and nested span tree.
    pub fn to_json(&self) -> Value {
        let mut fields = self.summary_fields();
        let cap = self.capture.to_json();
        for key in ["wall_us", "counters", "spans"] {
            if let Some(v) = cap.get(key) {
                fields.push((key.to_owned(), v.clone()));
            }
        }
        obj(fields)
    }
}

/// Top-K slow-request exemplar store, K per endpoint, keyed for id
/// lookup. Small (≤ K × endpoints entries), so inserts scan linearly
/// under one mutex.
pub struct TraceStore {
    per_endpoint: usize,
    inner: Mutex<Vec<StoredTrace>>,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new(EXEMPLARS_PER_ENDPOINT)
    }
}

impl TraceStore {
    /// Creates a store retaining at most `per_endpoint` exemplars per
    /// endpoint class.
    pub fn new(per_endpoint: usize) -> TraceStore {
        TraceStore {
            per_endpoint: per_endpoint.max(1),
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Offers a finished trace; the slowest `per_endpoint` requests per
    /// endpoint (by handle time) survive.
    pub fn offer(&self, trace: StoredTrace) {
        let mut traces = self.inner.lock().expect("trace store poisoned");
        let endpoint = trace.record.endpoint;
        traces.push(trace);
        let count = traces
            .iter()
            .filter(|t| t.record.endpoint == endpoint)
            .count();
        if count > self.per_endpoint {
            // Evict the fastest exemplar of this endpoint.
            if let Some(pos) = traces
                .iter()
                .enumerate()
                .filter(|(_, t)| t.record.endpoint == endpoint)
                .min_by_key(|(_, t)| t.record.handle_us)
                .map(|(i, _)| i)
            {
                traces.remove(pos);
            }
        }
    }

    /// Number of stored exemplars.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace store poisoned").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent exemplar matching `id` (ids are client-supplied,
    /// so duplicates are possible; latest wins).
    pub fn get(&self, id: &str) -> Option<StoredTrace> {
        let traces = self.inner.lock().expect("trace store poisoned");
        traces.iter().rev().find(|t| t.record.id == id).cloned()
    }

    /// `GET /v1/traces` document: exemplar summaries sorted slowest-first
    /// within endpoint, evaluate/optimize first.
    pub fn list_json(&self) -> Value {
        let mut traces = self.inner.lock().expect("trace store poisoned").clone();
        traces.sort_by(|a, b| {
            a.record
                .endpoint
                .as_str()
                .cmp(b.record.endpoint.as_str())
                .then(b.record.handle_us.cmp(&a.record.handle_us))
        });
        let rows: Vec<Value> = traces.iter().map(|t| obj(t.summary_fields())).collect();
        obj(vec![
            (
                "per_endpoint_capacity".to_owned(),
                Value::Number(self.per_endpoint as f64),
            ),
            ("traces".to_owned(), Value::Array(rows)),
        ])
    }
}

/// JSONL access log selected by `TAC25D_ACCESS_LOG=path`. Opened lazily
/// on the first logged request; silently disabled if the path cannot be
/// opened (a daemon must not die over its log).
fn access_log() -> Option<&'static Mutex<std::fs::File>> {
    static LOG: OnceLock<Option<Mutex<std::fs::File>>> = OnceLock::new();
    LOG.get_or_init(|| {
        let path = std::env::var_os("TAC25D_ACCESS_LOG").filter(|v| !v.is_empty())?;
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()
            .map(Mutex::new)
    })
    .as_ref()
}

/// Renders one access-log line (without trailing newline). Split from
/// [`log_access`] so tests can check the format without touching the
/// process environment.
pub fn access_log_line(record: &RequestRecord, t_us: u64) -> String {
    obj([
        ("t_us", Value::Number(t_us as f64)),
        ("id", Value::String(record.id.clone())),
        ("method", Value::String(record.method.clone())),
        ("path", Value::String(record.path.clone())),
        ("status", Value::Number(f64::from(record.status))),
        ("queue_wait_us", Value::Number(record.queue_wait_us as f64)),
        ("handle_us", Value::Number(record.handle_us as f64)),
        ("bytes_out", Value::Number(record.bytes_out as f64)),
    ])
    .render()
}

/// Appends one JSONL line for a finished request when `TAC25D_ACCESS_LOG`
/// is configured; no-op (one cached `Option` check) otherwise.
pub fn log_access(record: &RequestRecord, t_us: u64) {
    if let Some(file) = access_log() {
        let line = access_log_line(record, t_us);
        let mut file = file.lock().expect("access log poisoned");
        let _ = writeln!(file, "{line}");
    }
}

/// Shared per-daemon telemetry state, threaded through the worker pool.
pub struct Telemetry {
    /// Whether evaluate/optimize requests get a trace collector.
    pub tracing: bool,
    /// The slow-request exemplar store.
    pub traces: TraceStore,
    /// The `/metrics/history` ring buffer.
    pub history: History,
}

impl Telemetry {
    /// Creates telemetry state; history capacity/interval come from the
    /// environment (`TAC25D_OBS_HISTORY`).
    pub fn new(tracing: bool) -> Telemetry {
        Telemetry {
            tracing,
            traces: TraceStore::default(),
            history: History::from_env(),
        }
    }
}

/// Renders a `/v1/traces/{id}` document (or, with `"traces"` present, a
/// `/v1/traces` listing) as the human-readable table behind
/// `tac25d trace-report`.
pub fn render_trace_report(doc: &Value) -> String {
    let mut out = String::new();
    if let Some(rows) = doc.get("traces").and_then(Value::as_array) {
        out.push_str("== stored trace exemplars ==\n");
        out.push_str(&format!(
            "{:<28} {:<9} {:>4} {:>12} {:>12} {:>6}\n",
            "id", "endpoint", "st", "queue_us", "handle_us", "spans"
        ));
        for row in rows {
            out.push_str(&format!(
                "{:<28} {:<9} {:>4} {:>12} {:>12} {:>6}\n",
                row.get("id").and_then(Value::as_str).unwrap_or("?"),
                row.get("endpoint").and_then(Value::as_str).unwrap_or("?"),
                num(row, "status"),
                num(row, "queue_wait_us"),
                num(row, "handle_us"),
                num(row, "span_count"),
            ));
        }
        return out;
    }
    out.push_str(&format!(
        "== trace {} ==\n",
        doc.get("id").and_then(Value::as_str).unwrap_or("?")
    ));
    out.push_str(&format!(
        "endpoint {}  status {}  queue {} us  handle {} us\n",
        doc.get("endpoint").and_then(Value::as_str).unwrap_or("?"),
        num(doc, "status"),
        num(doc, "queue_wait_us"),
        num(doc, "handle_us"),
    ));
    out.push_str("\nspans:\n");
    match doc.get("spans").and_then(Value::as_array) {
        Some(spans) if !spans.is_empty() => {
            for span in spans {
                render_span(&mut out, span, 1);
            }
        }
        _ => out.push_str("  (no spans captured)\n"),
    }
    out.push_str("\ncounter deltas:\n");
    match doc.get("counters") {
        Some(Value::Object(pairs)) if !pairs.is_empty() => {
            for (name, v) in pairs {
                out.push_str(&format!(
                    "  {name:<36} {:>12}\n",
                    v.as_f64().map(|n| format!("{n:.0}")).unwrap_or_default()
                ));
            }
        }
        _ => out.push_str("  (none)\n"),
    }
    out
}

fn num(doc: &Value, key: &str) -> String {
    doc.get(key)
        .and_then(Value::as_f64)
        .map(|n| format!("{n:.0}"))
        .unwrap_or_else(|| "?".to_owned())
}

fn render_span(out: &mut String, span: &Value, depth: usize) {
    out.push_str(&format!(
        "{}{}  +{} us  {} us\n",
        "  ".repeat(depth),
        span.get("name").and_then(Value::as_str).unwrap_or("?"),
        num(span, "start_us"),
        num(span, "dur_us"),
    ));
    if let Some(children) = span.get("children").and_then(Value::as_array) {
        for child in children {
            render_span(out, child, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, endpoint: Endpoint, handle_us: u64) -> RequestRecord {
        RequestRecord {
            id: id.to_owned(),
            method: "POST".to_owned(),
            path: "/v1/evaluate".to_owned(),
            endpoint,
            status: 200,
            queue_wait_us: 5,
            handle_us,
            bytes_out: 100,
        }
    }

    fn stored(id: &str, endpoint: Endpoint, handle_us: u64) -> StoredTrace {
        obs::trace::begin();
        {
            let _g = obs::span!("serve.test_span");
        }
        StoredTrace {
            record: record(id, endpoint, handle_us),
            t_us: 1,
            capture: obs::trace::finish().expect("capture"),
        }
    }

    #[test]
    fn endpoint_classification() {
        assert_eq!(Endpoint::of("POST", "/v1/evaluate"), Endpoint::Evaluate);
        assert_eq!(Endpoint::of("POST", "/v1/optimize"), Endpoint::Optimize);
        assert_eq!(Endpoint::of("GET", "/healthz"), Endpoint::Probe);
        assert_eq!(Endpoint::of("GET", "/metrics"), Endpoint::Probe);
        assert_eq!(Endpoint::of("GET", "/metrics/history"), Endpoint::Probe);
        assert_eq!(Endpoint::of("GET", "/v1/traces"), Endpoint::Probe);
        assert_eq!(Endpoint::of("GET", "/v1/traces/req-9"), Endpoint::Probe);
        assert_eq!(Endpoint::of("GET", "/nope"), Endpoint::Other);
        assert_eq!(Endpoint::of("DELETE", "/healthz"), Endpoint::Other);
        assert!(Endpoint::Evaluate.traceable());
        assert!(Endpoint::Optimize.traceable());
        assert!(!Endpoint::Probe.traceable());
        assert!(!Endpoint::Other.traceable());
    }

    #[test]
    fn status_classes() {
        assert_eq!(status_class(200), "2xx");
        assert_eq!(status_class(404), "4xx");
        assert_eq!(status_class(422), "4xx");
        assert_eq!(status_class(504), "5xx");
        assert_eq!(status_class(101), "1xx");
    }

    #[test]
    fn handle_histograms_are_per_endpoint_and_class() {
        let before = handle_histogram(Endpoint::Evaluate, 200).count();
        handle_histogram(Endpoint::Evaluate, 200).record(10);
        assert_eq!(
            handle_histogram(Endpoint::Evaluate, 200).count(),
            before + 1
        );
        // Distinct class/endpoint → distinct histogram handle.
        assert!(!std::ptr::eq(
            Arc::as_ptr(handle_histogram(Endpoint::Evaluate, 200)),
            Arc::as_ptr(handle_histogram(Endpoint::Evaluate, 422)),
        ));
        assert!(!std::ptr::eq(
            Arc::as_ptr(handle_histogram(Endpoint::Evaluate, 200)),
            Arc::as_ptr(handle_histogram(Endpoint::Probe, 200)),
        ));
        // And it is the registered metric.
        assert_eq!(
            Arc::as_ptr(handle_histogram(Endpoint::Optimize, 500)),
            Arc::as_ptr(&obs::registry::histogram("serve.optimize.5xx_handle_us")),
        );
    }

    #[test]
    fn request_ids_accept_sane_headers_and_mint_otherwise() {
        assert_eq!(request_id(Some("abc-123")), "abc-123");
        let minted = request_id(None);
        assert!(minted.starts_with("req-"), "{minted}");
        // Distinct mints.
        assert_ne!(request_id(None), minted);
        // Rejected: empty, oversized, non-graphic.
        assert!(request_id(Some("")).starts_with("req-"));
        assert!(request_id(Some(&"x".repeat(200))).starts_with("req-"));
        assert!(request_id(Some("has space")).starts_with("req-"));
        assert!(request_id(Some("tab\tbad")).starts_with("req-"));
    }

    #[test]
    fn trace_store_keeps_top_k_per_endpoint() {
        let store = TraceStore::new(2);
        store.offer(stored("a", Endpoint::Evaluate, 10));
        store.offer(stored("b", Endpoint::Evaluate, 30));
        store.offer(stored("c", Endpoint::Evaluate, 20));
        store.offer(stored("d", Endpoint::Optimize, 1));
        assert_eq!(store.len(), 3, "2 evaluate + 1 optimize");
        assert!(store.get("a").is_none(), "fastest evaluate evicted");
        assert!(store.get("b").is_some());
        assert!(store.get("c").is_some());
        assert!(store.get("d").is_some(), "other endpoint unaffected");
    }

    #[test]
    fn trace_store_duplicate_ids_latest_wins() {
        let store = TraceStore::new(4);
        store.offer(stored("dup", Endpoint::Evaluate, 10));
        store.offer(stored("dup", Endpoint::Evaluate, 99));
        assert_eq!(store.get("dup").expect("found").record.handle_us, 99);
    }

    #[test]
    fn list_and_get_json_parse_and_sort() {
        let store = TraceStore::new(4);
        store.offer(stored("fast", Endpoint::Evaluate, 10));
        store.offer(stored("slow", Endpoint::Evaluate, 50));
        let doc = store.list_json().render();
        let v = tac25d_obs::json::parse(&doc).expect("list parses");
        let rows = v.get("traces").and_then(Value::as_array).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("id").and_then(Value::as_str), Some("slow"));
        let full = store.get("slow").expect("stored").to_json().render();
        let v = tac25d_obs::json::parse(&full).expect("full parses");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("slow"));
        assert!(v.get("spans").and_then(Value::as_array).is_some());
        let report = render_trace_report(&v);
        assert!(report.contains("serve.test_span"), "{report}");
    }

    #[test]
    fn access_log_line_is_escape_correct_json() {
        let mut r = record("id-1", Endpoint::Evaluate, 42);
        r.path = "/v1/eval\"uate".to_owned();
        let line = access_log_line(&r, 7);
        let v = tac25d_obs::json::parse(&line).expect("line parses");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("id-1"));
        assert_eq!(
            v.get("path").and_then(Value::as_str),
            Some("/v1/eval\"uate")
        );
        assert_eq!(v.get("handle_us").and_then(Value::as_f64), Some(42.0));
        assert!(!line.contains('\n'));
    }
}
