//! A minimal keep-alive HTTP client for the daemon — used by
//! `tac25d query`, the load generator and the `verify serve` harness.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One keep-alive connection to a daemon.
pub struct Client {
    stream: TcpStream,
    carry: Vec<u8>,
}

/// A received response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:8425`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        Ok(Client {
            stream,
            carry: Vec::new(),
        })
    }

    /// Sends `GET path`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and malformed responses.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.send(&format!("GET {path} HTTP/1.1\r\nHost: tac25d\r\n\r\n"))?;
        self.read_response()
    }

    /// Sends `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.post_with(path, body, &[])
    }

    /// Sends `POST path` with a JSON body plus extra request headers
    /// (e.g. `X-Request-Id` for trace lookup by a chosen id).
    ///
    /// # Errors
    ///
    /// Propagates transport errors and malformed responses.
    pub fn post_with(
        &mut self,
        path: &str,
        body: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!("POST {path} HTTP/1.1\r\nHost: tac25d\r\n");
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
        self.send(&head)?;
        self.read_response()
    }

    fn send(&mut self, raw: &str) -> std::io::Result<()> {
        self.stream.write_all(raw.as_bytes())?;
        self.stream.flush()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let malformed =
            |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_owned());
        // Head.
        let head_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(malformed("connection closed mid-response"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.carry[..head_end])
            .map_err(|_| malformed("non-UTF-8 response head"))?
            .to_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| malformed("empty response"))?;
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| malformed("bad status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((n, v)) = line.split_once(':') {
                headers.push((n.trim().to_ascii_lowercase(), v.trim().to_owned()));
            }
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| malformed("missing content-length"))?;
        let body_start = head_end + 4;
        while self.carry.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(malformed("connection closed mid-body"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let body = self.carry[body_start..body_start + content_length].to_vec();
        self.carry.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
