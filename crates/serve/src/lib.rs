//! # tac25d-serve — the placement-evaluation service
//!
//! Batch figure drivers pay the evaluator's cold-start cost (package-model
//! assembly, IC(0) factorization, coupled-solve warm-up) once per process
//! and amortize it over thousands of candidates. An interactive user asking
//! "would this organization be feasible?" pays it on *every* invocation.
//! This crate keeps one warm [`engine::EngineState`] — striped canonical
//! memo tables, incremental-assembly bases, warm-started solvers — behind a
//! long-running HTTP daemon, so concurrent clients share a single cache and
//! the steady-state cost of a repeat evaluation drops to a hash lookup.
//!
//! The stack is deliberately dependency-free (the workspace's
//! vendored-offline policy): a hand-rolled HTTP/1.1 layer over
//! `std::net::TcpListener` ([`http`]), the obs crate's JSON parser and
//! serializer for the wire format ([`tac25d_obs::json`]), and a fixed
//! worker pool with a bounded intake queue ([`server`]).
//!
//! Production semantics:
//!
//! - **Backpressure** — a bounded connection-intake queue; when full the
//!   acceptor sheds load with `503` + `Retry-After` instead of queueing
//!   unboundedly (counter `serve.shed`).
//! - **Deadlines** — every request carries an optional `deadline_ms`
//!   (bounded by the server default). Expiry aborts the evaluation
//!   *between* solver iterations ([`tac25d_core::prelude::Evaluator`]'s
//!   deadline handles) and returns `504` with partial progress
//!   (counter `serve.deadline_hits`).
//! - **Cross-request batching** — concurrent misses on one evaluation key
//!   coalesce to a single exact solve (single-flight in the core
//!   evaluator; counter `evaluator.singleflight_joins`).
//! - **Graceful drain** — SIGTERM/SIGINT stop the acceptor, in-flight
//!   requests finish, then the process exits.
//! - **Determinism** — daemon responses are byte-identical to a one-shot
//!   local evaluation of the same request (`tac25d query --local`); the
//!   `verify serve` mode pins this with a request corpus.
//!
//! - **Request-scoped tracing** — evaluate/optimize requests run under a
//!   per-thread trace collector ([`tac25d_obs::trace`]) capturing a
//!   request-local span tree and counter deltas; the slowest exemplars
//!   per endpoint are browsable at `GET /v1/traces`. Identity is
//!   header-only (`X-Request-Id` in/out), so bodies stay byte-identical;
//!   `verify trace` pins identity, isolation and ≤2% overhead.
//!
//! Endpoints: `POST /v1/evaluate`, `POST /v1/optimize`, `GET /healthz`,
//! `GET /metrics` (Prometheus text from the obs registry),
//! `GET /metrics/history` (ring-buffer time series), `GET /v1/traces`
//! and `GET /v1/traces/{id}` (slow-request exemplars).

pub mod client;
pub mod engine;
pub mod http;
pub mod protocol;
pub mod server;
pub mod telemetry;
