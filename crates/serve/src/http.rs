//! Minimal HTTP/1.1 over `std::net::TcpStream` — exactly the subset the
//! service needs (the vendored-offline policy rules out hyper et al.).
//!
//! Supported: request line + headers + `Content-Length` bodies, keep-alive
//! with pipelining (a persistent per-connection buffer carries bytes read
//! past the current request into the next parse), `Connection: close`,
//! bounded header and body sizes. Not supported (rejected cleanly):
//! chunked transfer encoding, upgrades, HTTP/2.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers before `431`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request-body bytes before `413`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path with query string, e.g. `/v1/evaluate`.
    pub path: String,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`; keep-alive is the HTTP/1.1 default).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Errors while reading one request. Each maps to a response status (or to
/// silently dropping the connection for clean EOF / IO errors).
#[derive(Debug)]
pub enum HttpError {
    /// Connection closed with no request bytes (normal keep-alive end).
    Eof,
    /// Malformed request line or headers → 400.
    BadRequest(String),
    /// Head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Body exceeded [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Read timed out mid-request (workers poll with a read timeout so
    /// they can observe shutdown; a timeout with a partial request means
    /// a stalled or abandoned client).
    Timeout,
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Eof => write!(f, "connection closed"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `stream`. `carry` is the connection's persistent
/// buffer: bytes of a *following* pipelined request read past this one are
/// left in it for the next call. Returns [`HttpError::Eof`] on a clean
/// close between requests.
pub fn read_request(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Result<Request, HttpError> {
    // Accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(carry) {
            break pos;
        }
        if carry.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).map_err(|e| {
            if is_timeout(&e) {
                HttpError::Timeout
            } else {
                HttpError::Io(e)
            }
        })?;
        if n == 0 {
            return if carry.iter().all(|&b| b == b'\r' || b == b'\n') {
                Err(HttpError::Eof)
            } else {
                Err(HttpError::BadRequest("truncated request head".into()))
            };
        }
        carry.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&carry[..head_end])
        .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()))?
        .to_owned();
    let body_start = head_end + 4; // past \r\n\r\n
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing path".into()))?
        .to_owned();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::BadRequest("not an HTTP/1.x request".into())),
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding unsupported".into(),
        ));
    }

    // Read the body, carrying any pipelined surplus over to the next call.
    while carry.len() < body_start + content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).map_err(|e| {
            if is_timeout(&e) {
                HttpError::Timeout
            } else {
                HttpError::Io(e)
            }
        })?;
        if n == 0 {
            return Err(HttpError::BadRequest("truncated request body".into()));
        }
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = carry[body_start..body_start + content_length].to_vec();
    carry.drain(..body_start + content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Position of the `\r\n\r\n` terminating the request head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An outgoing response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (Content-Length/Type and Connection are added by
    /// [`Response::write_to`]).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Content type sent with the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_owned(), value.into()));
        self
    }

    /// Serializes the response to `stream`. `close` sends
    /// `Connection: close` (otherwise `keep-alive`).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, stream: &mut TcpStream, close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The standard reason phrase for the status codes this service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 413, 422, 431, 500, 503, 504] {
            assert_ne!(reason_phrase(code), "Unknown", "code {code}");
        }
    }
}
