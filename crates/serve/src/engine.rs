//! The deterministic request-evaluation core shared by the daemon and the
//! one-shot `tac25d query --local` path.
//!
//! One [`EngineState`] per process wraps one [`Evaluator`] family: every
//! request gets a cheap per-request handle (with its own deadline) onto the
//! same striped memo tables and incremental-assembly bases, so concurrent
//! clients warm one cache. No thermal surrogate is attached — surrogate
//! screening adapts to observation history, which would make responses
//! depend on request arrival order; the serve contract is that a response
//! is **byte-identical** to a cold one-shot evaluation of the same request
//! (pinned by `verify serve`). For the same reason response JSON excludes
//! cache-warmth-dependent statistics (`thermal_sims`) and renders floats
//! with `f64`'s shortest round-trip formatting.

use std::time::Instant;
use tac25d_core::prelude::*;
use tac25d_floorplan::units::Celsius;
use tac25d_obs::json::{obj, Value};

use crate::protocol::{layout_grammar, EvaluateRequest, OptimizeRequest};

/// Status + JSON body produced by the engine for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineResult {
    /// HTTP status the transport should send.
    pub status: u16,
    /// Response body (always a JSON document).
    pub body: String,
}

impl EngineResult {
    fn ok(v: Value) -> EngineResult {
        EngineResult {
            status: 200,
            body: v.render(),
        }
    }

    fn error(status: u16, message: impl Into<String>) -> EngineResult {
        EngineResult {
            status,
            body: obj([("error", Value::String(message.into()))]).render(),
        }
    }
}

/// The process-wide warm state behind every endpoint.
pub struct EngineState {
    evaluator: Evaluator,
}

impl EngineState {
    /// Creates an engine around a system specification. The spec's own
    /// `threshold` is the server default; per-request `threshold_c` values
    /// are honored exactly (evaluation feasibility is pure arithmetic on
    /// the solved temperature field, and optimize runs that need a
    /// different threshold get a dedicated evaluator).
    pub fn new(spec: SystemSpec) -> EngineState {
        EngineState {
            evaluator: Evaluator::new(spec),
        }
    }

    /// The underlying system specification.
    pub fn spec(&self) -> &SystemSpec {
        self.evaluator.spec()
    }

    /// The shared evaluator family (for counters and tests).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    fn handle(&self, deadline: Option<Instant>) -> Evaluator {
        match deadline {
            Some(d) => self.evaluator.with_deadline(d),
            None => self.evaluator.share(),
        }
    }

    /// Runs one `/v1/evaluate` request. `deadline` is the transport-level
    /// deadline (request `deadline_ms` already merged with the server
    /// default by the caller).
    pub fn evaluate(&self, req: &EvaluateRequest, deadline: Option<Instant>) -> EngineResult {
        // Root of the request's trace capture; inert unless obs or a
        // per-thread trace collector is active.
        let _span = tac25d_obs::span!("serve.evaluate");
        let spec = self.spec();
        let Some(op) = spec.vf.at_frequency(req.freq_mhz) else {
            return EngineResult::error(422, format!("no VF point at {} MHz", req.freq_mhz));
        };
        let core_count = spec.chip.core_count();
        if req.cores == 0 || req.cores > core_count {
            return EngineResult::error(
                422,
                format!("cores must be in 1..={core_count}, got {}", req.cores),
            );
        }
        let threshold = Celsius(req.threshold_c);
        let ev = self.handle(deadline);
        match ev.evaluate(&req.layout, req.benchmark, op, req.cores) {
            Ok(e) => EngineResult::ok(obj([
                ("layout", Value::from(layout_grammar(&req.layout))),
                ("benchmark", Value::from(req.benchmark.name())),
                ("op", Value::from(op.to_string())),
                ("active_cores", Value::from(e.active_cores)),
                (
                    "dark_cores",
                    Value::from(core_count.saturating_sub(e.active_cores)),
                ),
                ("peak_c", Value::from(e.peak.value())),
                ("total_power_w", Value::from(e.total_power.value())),
                ("noc_power_w", Value::from(e.noc_power.value())),
                ("ips", Value::from(e.ips.0)),
                ("converged", Value::from(e.converged)),
                ("threshold_c", Value::from(req.threshold_c)),
                ("feasible", Value::from(e.feasible(threshold))),
                ("outer_iterations", Value::from(e.outer_iterations)),
            ])),
            Err(err) => eval_error_result(&err),
        }
    }

    /// Runs one `/v1/optimize` request.
    pub fn optimize(&self, req: &OptimizeRequest, deadline: Option<Instant>) -> EngineResult {
        let _span = tac25d_obs::span!("serve.optimize");
        let spec = self.spec();
        let cfg = OptimizerConfig {
            weights: Weights::new(req.alpha, req.beta),
            search: if req.exhaustive {
                PlacementSearch::Exhaustive
            } else {
                PlacementSearch::MultiStartGreedy { starts: req.starts }
            },
            seed: req.seed,
            ..OptimizerConfig::default()
        };
        // A request at the server threshold shares the warm evaluator
        // family; any other threshold gets a dedicated cold evaluator
        // (thresholds steer the *search*, and the memoized evaluations are
        // threshold-free, but `optimize` reads its bound from the spec).
        let ev = if req.threshold_c == spec.threshold.value() {
            self.handle(deadline)
        } else {
            let mut custom = spec.clone();
            custom.threshold = Celsius(req.threshold_c);
            let cold = Evaluator::new(custom);
            match deadline {
                Some(d) => cold.with_deadline(d),
                None => cold,
            }
        };
        let outcome = if req.iso_cost {
            optimize_with_filter(&ev, req.benchmark, &cfg, |c, base| c.cost <= base.cost)
        } else {
            optimize(&ev, req.benchmark, &cfg)
        };
        match outcome {
            Ok(result) => EngineResult::ok(render_optimize(req, &result)),
            Err(OptimizeError::Eval(e)) => eval_error_result(&e),
            Err(OptimizeError::NoBaseline(b)) => EngineResult::error(
                422,
                format!("benchmark {b} has no feasible single-chip baseline"),
            ),
        }
    }
}

/// Maps evaluation errors to transport results: deadline expiry is `504`
/// with partial progress, bad inputs are `422`, solver trouble is `500`.
fn eval_error_result(err: &EvalError) -> EngineResult {
    match err {
        EvalError::Deadline { outer_iterations } => EngineResult {
            status: 504,
            body: obj([
                ("error", Value::from("deadline expired")),
                ("completed", Value::from(false)),
                ("outer_iterations", Value::from(*outer_iterations)),
            ])
            .render(),
        },
        EvalError::Layout(_) | EvalError::Timing(_) => EngineResult::error(422, err.to_string()),
        _ => EngineResult::error(500, err.to_string()),
    }
}

fn render_optimize(req: &OptimizeRequest, result: &OptimizeResult) -> Value {
    let base = &result.baseline;
    let baseline = obj([
        ("op", Value::from(base.op.to_string())),
        ("active_cores", Value::from(base.active_cores)),
        ("ips", Value::from(base.ips.0)),
        ("peak_c", Value::from(base.peak.value())),
        ("cost", Value::from(base.cost)),
    ]);
    let best = match &result.best {
        None => Value::Null,
        Some(best) => {
            let c = &best.candidate;
            let r = u64::from(c.count.r());
            obj([
                ("layout", Value::from(layout_grammar(&best.layout))),
                ("chiplets", Value::from(r * r)),
                ("edge_mm", Value::from(c.edge.value())),
                ("op", Value::from(c.op.to_string())),
                ("active_cores", Value::from(c.active_cores)),
                ("ips", Value::from(c.ips.0)),
                ("peak_c", Value::from(best.peak.value())),
                ("total_power_w", Value::from(best.total_power.value())),
                ("cost", Value::from(c.cost)),
                ("objective", Value::from(c.objective)),
                ("normalized_perf", Value::from(best.normalized_perf)),
                ("normalized_cost", Value::from(best.normalized_cost)),
            ])
        }
    };
    // `stats` deliberately omits `thermal_sims` (and the surrogate fields,
    // zero without a surrogate): those depend on cache warmth, i.e. on
    // what other requests ran before this one, and would break the
    // byte-identity contract with one-shot evaluation.
    let stats = obj([
        (
            "candidates_total",
            Value::from(result.stats.candidates_total),
        ),
        (
            "candidates_tried",
            Value::from(result.stats.candidates_tried),
        ),
        (
            "candidates_pruned",
            Value::from(result.stats.candidates_pruned),
        ),
    ]);
    obj([
        ("benchmark", Value::from(req.benchmark.name())),
        ("seed", Value::from(req.seed)),
        ("threshold_c", Value::from(req.threshold_c)),
        ("baseline", baseline),
        ("best", best),
        ("stats", stats),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_obs::json::parse;

    fn engine() -> EngineState {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        EngineState::new(spec)
    }

    fn eval_req(body: &str) -> EvaluateRequest {
        EvaluateRequest::from_json(&parse(body).unwrap()).unwrap()
    }

    #[test]
    fn evaluate_is_deterministic_and_cache_independent() {
        let warm = engine();
        let req = eval_req(r#"{"benchmark": "hpccg", "layout": "uniform:4,6"}"#);
        let first = warm.evaluate(&req, None);
        assert_eq!(first.status, 200, "{}", first.body);
        // Same engine, warm cache: byte-identical.
        assert_eq!(warm.evaluate(&req, None), first);
        // Fresh engine, cold cache: still byte-identical (the contract
        // `verify serve` holds the daemon to).
        assert_eq!(engine().evaluate(&req, None), first);
        let v = parse(&first.body).unwrap();
        assert_eq!(v.get("active_cores").unwrap().as_f64(), Some(256.0));
        assert_eq!(v.get("dark_cores").unwrap().as_f64(), Some(0.0));
        assert!(v.get("peak_c").unwrap().as_f64().unwrap() > 40.0);
    }

    #[test]
    fn evaluate_rejects_bad_operating_points() {
        let e = engine();
        let r = e.evaluate(
            &eval_req(r#"{"benchmark": "hpccg", "layout": "2d", "freq_mhz": 123}"#),
            None,
        );
        assert_eq!(r.status, 422);
        let r = e.evaluate(
            &eval_req(r#"{"benchmark": "hpccg", "layout": "2d", "cores": 9999}"#),
            None,
        );
        assert_eq!(r.status, 422);
    }

    #[test]
    fn expired_deadline_yields_504_with_partial_progress() {
        let e = engine();
        let req = eval_req(r#"{"benchmark": "shock", "layout": "uniform:4,9"}"#);
        let r = e.evaluate(&req, Some(Instant::now()));
        assert_eq!(r.status, 504, "{}", r.body);
        let v = parse(&r.body).unwrap();
        assert_eq!(v.get("completed").unwrap().as_bool(), Some(false));
        assert!(v.get("outer_iterations").unwrap().as_f64().is_some());
        // The engine stays serviceable after the abort.
        assert_eq!(e.evaluate(&req, None).status, 200);
    }

    #[test]
    fn per_request_threshold_controls_feasibility_only() {
        let e = engine();
        let lenient = e.evaluate(
            &eval_req(r#"{"benchmark": "shock", "layout": "2d", "threshold_c": 1000}"#),
            None,
        );
        let strict = e.evaluate(
            &eval_req(r#"{"benchmark": "shock", "layout": "2d", "threshold_c": 20}"#),
            None,
        );
        let lv = parse(&lenient.body).unwrap();
        let sv = parse(&strict.body).unwrap();
        assert_eq!(
            lv.get("peak_c").unwrap().as_f64(),
            sv.get("peak_c").unwrap().as_f64(),
            "threshold must not perturb the physics"
        );
        assert_eq!(lv.get("feasible").unwrap().as_bool(), Some(true));
        assert_eq!(sv.get("feasible").unwrap().as_bool(), Some(false));
    }
}
