//! End-to-end daemon tests over real sockets: keep-alive byte-identity,
//! deadlines, backpressure, and graceful drain.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tac25d_core::prelude::SystemSpec;
use tac25d_serve::client::Client;
use tac25d_serve::engine::EngineState;
use tac25d_serve::server::{start, ServerConfig};

fn engine() -> Arc<EngineState> {
    let mut spec = SystemSpec::fast();
    spec.thermal.grid = 16;
    Arc::new(EngineState::new(spec))
}

fn boot(config: ServerConfig) -> (tac25d_serve::server::ServerHandle, String, Arc<EngineState>) {
    let engine = engine();
    let handle = start(config, Arc::clone(&engine)).expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();
    (handle, addr, engine)
}

#[test]
fn healthz_metrics_and_keepalive_byte_identity() {
    let (handle, addr, engine) = boot(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), r#"{"status":"ok"}"#);

    // Two POSTs on one keep-alive connection; both must match the local
    // engine's answer byte-for-byte.
    let body = r#"{"benchmark": "hpccg", "layout": "uniform:4,6"}"#;
    let expected = engine
        .evaluate(
            &tac25d_serve::protocol::EvaluateRequest::from_json(
                &tac25d_obs::json::parse(body).unwrap(),
            )
            .unwrap(),
            None,
        )
        .body;
    for _ in 0..2 {
        let r = client.post("/v1/evaluate", body).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.text(), expected, "daemon response diverged from local");
    }

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(
        text.contains("serve_requests"),
        "metrics missing serve_requests:\n{text}"
    );

    handle.shutdown();
}

#[test]
fn expired_deadline_returns_504_and_connection_stays_usable() {
    let (handle, addr, _engine) = boot(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    // deadline_ms: 0 expires before any thermal work starts. Use a layout
    // distinct from other tests so a warm cache can't serve it.
    let r = client
        .post(
            "/v1/evaluate",
            r#"{"benchmark": "shock", "layout": "sym16:4,2,5", "deadline_ms": 0}"#,
        )
        .unwrap();
    assert_eq!(r.status, 504, "{}", r.text());
    let v = tac25d_obs::json::parse(&r.text()).unwrap();
    assert_eq!(v.get("completed").unwrap().as_bool(), Some(false));

    // Same connection, no deadline: served fine — the pool is not wedged.
    let r = client
        .post(
            "/v1/evaluate",
            r#"{"benchmark": "shock", "layout": "sym16:4,2,5"}"#,
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());

    handle.shutdown();
}

#[test]
fn concurrent_deadline_504s_are_shaped_and_never_cached() {
    let (handle, addr, _engine) = boot(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });

    // Distinct layouts per thread so every request does fresh thermal work
    // (a warm cache would serve the answer before the deadline matters).
    // deadline_ms: 0 is already expired when the fixed point starts, so
    // each evaluation aborts deterministically mid-flight.
    let layouts = ["uniform:2,5", "uniform:4,3", "sym4:7", "sym16:3,2,4"];
    let threads: Vec<_> = layouts
        .iter()
        .map(|&layout| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let body =
                    format!(r#"{{"benchmark": "shock", "layout": "{layout}", "deadline_ms": 0}}"#);
                let r = client.post("/v1/evaluate", &body).unwrap();
                (layout, r.status, r.text())
            })
        })
        .collect();
    for t in threads {
        let (layout, status, text) = t.join().unwrap();
        assert_eq!(status, 504, "{layout}: {text}");
        // Partial-progress shape: the error string, completed=false and
        // the outer-iteration count reached when the deadline hit.
        let v = tac25d_obs::json::parse(&text).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("deadline expired"));
        assert_eq!(v.get("completed").unwrap().as_bool(), Some(false));
        assert!(
            v.get("outer_iterations").unwrap().as_f64().is_some(),
            "{layout}: missing outer_iterations in {text}"
        );
    }

    // None of the aborted solves may have been cached: re-running each
    // layout with no deadline must return 200 and match a cold engine
    // byte-for-byte (a cached partial fixed point would diverge).
    for layout in layouts {
        let mut client = Client::connect(&addr).unwrap();
        let body = format!(r#"{{"benchmark": "shock", "layout": "{layout}"}}"#);
        let r = client.post("/v1/evaluate", &body).unwrap();
        assert_eq!(r.status, 200, "{layout}: {}", r.text());
        let req = tac25d_serve::protocol::EvaluateRequest::from_json(
            &tac25d_obs::json::parse(&body).unwrap(),
        )
        .unwrap();
        let expected = engine().evaluate(&req, None).body;
        assert_eq!(
            r.text(),
            expected,
            "{layout}: daemon diverged from a cold engine after an aborted solve"
        );
    }

    handle.shutdown();
}

#[test]
fn full_intake_queue_sheds_with_503_without_wedging_the_pool() {
    let (handle, addr, _engine) = boot(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });

    // Occupy the single worker with an idle connection, then fill the
    // 1-slot queue with a second. Both send no bytes, so they hold their
    // positions until closed.
    let blocker = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // worker dequeues it
    let queued = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The next connection must be shed with 503 + Retry-After.
    let mut shed = Client::connect(&addr).unwrap();
    let r = shed.get("/healthz").unwrap();
    assert_eq!(r.status, 503, "{}", r.text());
    assert_eq!(r.header("retry-after"), Some("1"));

    // Release the pool: the shed connection did not wedge anything.
    drop(blocker);
    drop(queued);
    std::thread::sleep(Duration::from_millis(300));
    let mut ok = Client::connect(&addr).unwrap();
    assert_eq!(ok.get("/healthz").unwrap().status, 200);

    handle.shutdown();
}

#[test]
fn request_id_is_header_only_and_custom_ids_are_honored() {
    let (handle, addr, _engine) = boot(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let body = r#"{"benchmark": "hpccg", "layout": "uniform:4,6"}"#;
    let plain = client.post("/v1/evaluate", body).unwrap();
    assert_eq!(plain.status, 200);
    let minted = plain.header("x-request-id").expect("minted id echoed");
    assert!(minted.starts_with("req-"), "unexpected minted id {minted}");

    let custom = client
        .post_with("/v1/evaluate", body, &[("X-Request-Id", "itest-custom-7")])
        .unwrap();
    assert_eq!(custom.header("x-request-id"), Some("itest-custom-7"));
    // Identity is header-only: the body must not change with the id.
    assert_eq!(custom.text(), plain.text());

    // Garbage ids (non-graphic, oversized) are replaced with minted ones.
    let long = "x".repeat(200);
    let replaced = client
        .post_with("/v1/evaluate", body, &[("X-Request-Id", &long)])
        .unwrap();
    let got = replaced.header("x-request-id").expect("id echoed");
    assert!(got.starts_with("req-"), "oversized id not replaced: {got}");

    handle.shutdown();
}

#[test]
fn metrics_history_is_served_over_http() {
    let (handle, addr, _engine) = boot(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let r = client.get("/metrics/history").unwrap();
    assert_eq!(r.status, 200);
    let v = tac25d_obs::json::parse(&r.text()).expect("history JSON parses");
    assert!(v.get("capacity").unwrap().as_f64().unwrap() >= 1.0);
    assert!(v.get("interval_ms").unwrap().as_f64().unwrap() >= 1.0);
    // The sampler takes one snapshot immediately at boot, so the buffer
    // is never empty; sequence numbers are monotone.
    let samples = v.get("samples").unwrap().as_array().expect("samples");
    assert!(!samples.is_empty(), "history empty right after boot");
    let seqs: Vec<f64> = samples
        .iter()
        .map(|s| s.get("seq").unwrap().as_f64().unwrap())
        .collect();
    assert!(
        seqs.windows(2).all(|w| w[1] > w[0]),
        "seqs not monotone: {seqs:?}"
    );

    handle.shutdown();
}

#[test]
fn trace_exemplars_cover_evaluates_but_never_probes() {
    let (handle, addr, _engine) = boot(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    // Probes first: they must not leave exemplars.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    assert_eq!(client.get("/metrics").unwrap().status, 200);
    let body = r#"{"benchmark": "hpccg", "layout": "uniform:4,6"}"#;
    let r = client
        .post_with("/v1/evaluate", body, &[("X-Request-Id", "itest-trace-1")])
        .unwrap();
    assert_eq!(r.status, 200);

    let list = client.get("/v1/traces").unwrap();
    assert_eq!(list.status, 200);
    let v = tac25d_obs::json::parse(&list.text()).expect("trace list parses");
    let traces = v.get("traces").unwrap().as_array().expect("traces");
    assert!(!traces.is_empty(), "evaluate left no exemplar");
    for t in traces {
        let endpoint = t.get("endpoint").unwrap().as_str().unwrap();
        assert!(
            endpoint == "evaluate" || endpoint == "optimize",
            "probe leaked into the exemplar store: {endpoint}"
        );
    }

    let one = client.get("/v1/traces/itest-trace-1").unwrap();
    assert_eq!(one.status, 200, "{}", one.text());
    let doc = tac25d_obs::json::parse(&one.text()).expect("trace parses");
    assert_eq!(doc.get("id").unwrap().as_str(), Some("itest-trace-1"));
    let spans = doc.get("spans").unwrap().as_array().expect("spans");
    assert_eq!(
        spans[0].get("name").unwrap().as_str(),
        Some("serve.evaluate"),
        "trace root is not the endpoint span"
    );
    assert!(
        doc.get("counters").is_some(),
        "trace missing counter deltas"
    );

    assert_eq!(
        client.get("/v1/traces/itest-no-such-id").unwrap().status,
        404
    );

    handle.shutdown();
}

#[test]
fn untraced_daemon_stores_nothing_but_keeps_the_header_contract() {
    let (handle, addr, engine) = boot(ServerConfig {
        tracing: false,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();

    let body = r#"{"benchmark": "shock", "layout": "uniform:2,4"}"#;
    let r = client
        .post_with("/v1/evaluate", body, &[("X-Request-Id", "itest-untraced")])
        .unwrap();
    assert_eq!(r.status, 200);
    // The wire contract is identical without tracing: id echoed,
    // body byte-identical to the local engine.
    assert_eq!(r.header("x-request-id"), Some("itest-untraced"));
    let expected = engine
        .evaluate(
            &tac25d_serve::protocol::EvaluateRequest::from_json(
                &tac25d_obs::json::parse(body).unwrap(),
            )
            .unwrap(),
            None,
        )
        .body;
    assert_eq!(r.text(), expected);

    // But nothing is captured.
    let list = client.get("/v1/traces").unwrap();
    let v = tac25d_obs::json::parse(&list.text()).unwrap();
    assert!(
        v.get("traces").unwrap().as_array().unwrap().is_empty(),
        "untraced daemon stored an exemplar"
    );
    assert_eq!(client.get("/v1/traces/itest-untraced").unwrap().status, 404);

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let (handle, addr, _engine) = boot(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    handle.shutdown();
    // After drain the daemon no longer serves.
    let gone = Client::connect(&addr)
        .and_then(|mut c| c.get("/healthz"))
        .is_err();
    assert!(gone, "daemon still answering after shutdown");
}
