#![warn(missing_docs)]

//! # tac25d-pdn
//!
//! Power-delivery-network (PDN) IR-drop analysis for the `tac25d`
//! reproduction of *"Leveraging Thermally-Aware Chiplet Organization in
//! 2.5D Systems to Reclaim Dark Silicon"* (DATE 2018).
//!
//! The paper reclaims dark silicon by running many more watts than a
//! conventional package sustains, and flags the consequence itself
//! (footnote 3): *"the challenge then will be the design of a power
//! delivery network that can provide the current required for this large
//! power consumption"*. This crate quantifies that challenge: a resistive
//! PDN model computes the static IR drop seen by every core for any
//! chiplet organization and power map, so organizations can additionally
//! be checked against a supply-droop budget.
//!
//! ## Model
//!
//! One node per core (its local power-grid tap). Each node connects
//!
//! * **vertically** to the package supply through the per-core via stack —
//!   microbumps + interposer TSVs + a share of the C4 array for 2.5D
//!   systems (counts derived from the Table I bump geometry and the core
//!   tile area), or directly through C4 for the single-chip baseline;
//! * **laterally** to neighbouring cores *within the same chiplet* through
//!   the on-die power grid (no current flows between chiplets);
//! * all vertical paths share a bulk package/board + VRM resistance that
//!   carries the total current.
//!
//! Cores draw `I = P/V_dd`; the resulting SPD conductance system is solved
//! with the same PCG used by the thermal crate.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::organization::{ChipletLayout, LayoutError, PackageRules};
use tac25d_thermal::materials::BumpField;
use tac25d_thermal::sparse::{pcg, SolveError, TripletMatrix};

/// Electrical constants of the delivery path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnParams {
    /// Nominal supply voltage, volts (0.9 V at the fastest point).
    pub vdd: f64,
    /// Resistance of one microbump, Ω (Fig. 2: 0.095 Ω).
    pub r_microbump: f64,
    /// Resistance of one TSV, Ω (≈ ρ_Cu·L/A for Ø10 µm × 100 µm ≈ 22 mΩ).
    pub r_tsv: f64,
    /// Resistance of one C4 bump, Ω.
    pub r_c4: f64,
    /// Interposer redistribution-layer spreading resistance per core, Ω
    /// (lumped; dominates the vertical stack).
    pub r_rdl_per_core: f64,
    /// On-die power-grid resistance between adjacent core tiles, Ω.
    pub r_lat_core: f64,
    /// Shared package + board + VRM output resistance, Ω (carries the
    /// total current).
    pub r_shared: f64,
    /// Fraction of each bump/via field usable for the power net (the rest
    /// is ground and signal); 0.4 is a typical power-net share.
    pub power_net_fraction: f64,
    /// Microbump field geometry (Table I).
    pub microbumps: BumpField,
    /// TSV field geometry (Table I).
    pub tsvs: BumpField,
    /// C4 field geometry (Table I).
    pub c4: BumpField,
    /// Supply-droop budget as a fraction of `vdd` (5% is the classic
    /// sign-off number).
    pub droop_budget: f64,
}

impl Default for PdnParams {
    fn default() -> Self {
        PdnParams {
            vdd: 0.9,
            r_microbump: 0.095,
            r_tsv: 0.022,
            r_c4: 0.004,
            r_rdl_per_core: 0.010,
            r_lat_core: 0.050,
            r_shared: 8.0e-5,
            power_net_fraction: 0.4,
            microbumps: BumpField::microbump(),
            tsvs: BumpField::tsv(),
            c4: BumpField::c4(),
            droop_budget: 0.05,
        }
    }
}

impl PdnParams {
    /// Number of power-net bumps of a field under one core tile.
    fn bumps_per_core(&self, field: &BumpField, tile_area_mm2: f64) -> f64 {
        let pitch_mm = field.pitch.value();
        (tile_area_mm2 / (pitch_mm * pitch_mm) * self.power_net_fraction).max(1.0)
    }

    /// Effective vertical resistance from the package supply to one core's
    /// local grid, Ω.
    pub fn vertical_resistance(&self, tile_area_mm2: f64, through_interposer: bool) -> f64 {
        let c4 = self.r_c4 / self.bumps_per_core(&self.c4, tile_area_mm2);
        if through_interposer {
            let ub = self.r_microbump / self.bumps_per_core(&self.microbumps, tile_area_mm2);
            let tsv = self.r_tsv / self.bumps_per_core(&self.tsvs, tile_area_mm2);
            ub + tsv + c4 + self.r_rdl_per_core
        } else {
            c4
        }
    }
}

/// PDN analysis errors.
#[derive(Debug)]
pub enum PdnError {
    /// Invalid chiplet organization.
    Layout(LayoutError),
    /// The linear solve failed.
    Solve(SolveError),
    /// A power value was negative or non-finite.
    InvalidPower {
        /// Core index and value.
        reason: String,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::Layout(e) => write!(f, "invalid layout: {e}"),
            PdnError::Solve(e) => write!(f, "PDN solve failed: {e}"),
            PdnError::InvalidPower { reason } => write!(f, "invalid power: {reason}"),
        }
    }
}

impl Error for PdnError {}

impl From<LayoutError> for PdnError {
    fn from(e: LayoutError) -> Self {
        PdnError::Layout(e)
    }
}

impl From<SolveError> for PdnError {
    fn from(e: SolveError) -> Self {
        PdnError::Solve(e)
    }
}

/// A PDN model for one chip/organization pair.
#[derive(Debug, Clone)]
pub struct PdnModel {
    params: PdnParams,
    cores_per_row: u16,
    /// Chiplet index of each core (row-major core order).
    chiplet_of: Vec<usize>,
    /// Vertical conductance per core.
    g_vert: f64,
    /// Lateral conductance between adjacent same-chiplet cores.
    g_lat: f64,
}

impl PdnModel {
    /// Builds the PDN for a layout.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Layout`] for invalid organizations or layouts
    /// with no core-accurate mapping.
    pub fn new(
        chip: &ChipSpec,
        layout: &ChipletLayout,
        rules: &PackageRules,
        params: PdnParams,
    ) -> Result<Self, PdnError> {
        layout.validate(chip, rules)?;
        let r = layout.r();
        if !chip.divisible_by(r) {
            return Err(PdnError::Layout(LayoutError::IndivisibleCoreGrid {
                r,
                cores_per_row: chip.cores_per_row(),
            }));
        }
        let chiplet_of = chip.cores().map(|c| chip.core_to_chiplet(r, c).0).collect();
        let r_vert = params.vertical_resistance(chip.tile_area().value(), !layout.is_single_chip());
        Ok(PdnModel {
            g_vert: 1.0 / r_vert,
            g_lat: 1.0 / params.r_lat_core,
            cores_per_row: chip.cores_per_row(),
            chiplet_of,
            params,
        })
    }

    /// The parameters the model was built with.
    pub fn params(&self) -> &PdnParams {
        &self.params
    }

    /// Solves the static IR drop for per-core power draws (watts; one entry
    /// per core in row-major order, 0 for dark cores).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidPower`] for negative/non-finite powers,
    /// or a solver error.
    pub fn solve(&self, core_powers: &[f64]) -> Result<PdnSolution, PdnError> {
        let n = self.cores_per_row as usize;
        let cores = n * n;
        assert_eq!(
            core_powers.len(),
            cores,
            "need one power entry per core ({cores})"
        );
        for (i, &p) in core_powers.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(PdnError::InvalidPower {
                    reason: format!("core {i} draws {p} W"),
                });
            }
        }
        // Node 0..cores: core grid taps; node `cores`: the package node
        // behind the shared resistance.
        let nodes = cores + 1;
        let mut m = TripletMatrix::new(nodes);
        let pkg = cores;
        for iy in 0..n {
            for ix in 0..n {
                let a = iy * n + ix;
                m.add_conductance(a, pkg, self.g_vert);
                if ix + 1 < n && self.chiplet_of[a] == self.chiplet_of[a + 1] {
                    m.add_conductance(a, a + 1, self.g_lat);
                }
                if iy + 1 < n && self.chiplet_of[a] == self.chiplet_of[a + n] {
                    m.add_conductance(a, a + n, self.g_lat);
                }
            }
        }
        // The package node connects to the ideal VRM through r_shared;
        // grounding it makes the system non-singular.
        m.add_ground(pkg, 1.0 / self.params.r_shared);

        let vdd = self.params.vdd;
        let mut currents = vec![0.0; nodes];
        let mut total = 0.0;
        for (i, &p) in core_powers.iter().enumerate() {
            let amps = p / vdd;
            // Current drawn *out* of the node: negative injection in the
            // droop formulation (solve for droop with sources +I at loads).
            currents[i] = amps;
            total += amps;
        }
        let sol = pcg(&m.to_csr(), &currents, None, 1e-12, 50_000)?;
        let droops = sol.x[..cores].to_vec();
        Ok(PdnSolution {
            droops,
            total_current: total,
            vdd,
            budget: self.params.droop_budget,
        })
    }
}

/// Result of a PDN solve: the static droop (volts below nominal) at every
/// core tap.
#[derive(Debug, Clone)]
pub struct PdnSolution {
    droops: Vec<f64>,
    total_current: f64,
    vdd: f64,
    budget: f64,
}

impl PdnSolution {
    /// Droop at each core, volts (row-major core order).
    pub fn droops(&self) -> &[f64] {
        &self.droops
    }

    /// The worst droop, volts.
    pub fn max_droop(&self) -> f64 {
        self.droops.iter().cloned().fold(0.0, f64::max)
    }

    /// The worst droop as a fraction of the nominal supply.
    pub fn max_droop_fraction(&self) -> f64 {
        self.max_droop() / self.vdd
    }

    /// Effective supply voltage at the worst core.
    pub fn min_voltage(&self) -> f64 {
        self.vdd - self.max_droop()
    }

    /// Total current drawn from the VRM, amperes.
    pub fn total_current(&self) -> f64 {
        self.total_current
    }

    /// Whether the worst droop respects the sign-off budget.
    pub fn meets_budget(&self) -> bool {
        self.max_droop_fraction() <= self.budget + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::units::Mm;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    fn rules() -> PackageRules {
        PackageRules::default()
    }

    fn uniform_powers(w: f64) -> Vec<f64> {
        vec![w; 256]
    }

    #[test]
    fn zero_power_means_zero_droop() {
        let m = PdnModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            PdnParams::default(),
        )
        .unwrap();
        let s = m.solve(&uniform_powers(0.0)).unwrap();
        assert!(s.max_droop() < 1e-12);
        assert!(s.meets_budget());
    }

    #[test]
    fn droop_scales_linearly_with_power() {
        let m = PdnModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            PdnParams::default(),
        )
        .unwrap();
        let d1 = m.solve(&uniform_powers(0.5)).unwrap().max_droop();
        let d2 = m.solve(&uniform_powers(1.0)).unwrap().max_droop();
        assert!((d2 / d1 - 2.0).abs() < 1e-9, "{d1} vs {d2}");
    }

    #[test]
    fn interposer_path_adds_droop() {
        let p2d = PdnModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            PdnParams::default(),
        )
        .unwrap()
        .solve(&uniform_powers(1.0))
        .unwrap();
        let p25 = PdnModel::new(
            &chip(),
            &ChipletLayout::Uniform { r: 4, gap: Mm(4.0) },
            &rules(),
            PdnParams::default(),
        )
        .unwrap()
        .solve(&uniform_powers(1.0))
        .unwrap();
        assert!(
            p25.max_droop() > p2d.max_droop(),
            "2.5D adds microbump+TSV+RDL resistance: {} vs {}",
            p25.max_droop(),
            p2d.max_droop()
        );
    }

    #[test]
    fn reclaimed_high_power_config_stresses_the_pdn() {
        // Footnote 3: at ~1.4 W/core × 256 cores (≈500 A at 0.72 V-ish),
        // the default PDN violates the 5% droop budget — the engineering
        // challenge the paper acknowledges.
        let m = PdnModel::new(
            &chip(),
            &ChipletLayout::Uniform { r: 4, gap: Mm(8.0) },
            &rules(),
            PdnParams::default(),
        )
        .unwrap();
        let hot = m.solve(&uniform_powers(1.4)).unwrap();
        assert!(hot.total_current() > 350.0, "I = {}", hot.total_current());
        assert!(
            !hot.meets_budget(),
            "droop fraction {:.4} should exceed 5%",
            hot.max_droop_fraction()
        );
        // A moderate configuration passes.
        let mild = m.solve(&uniform_powers(0.6)).unwrap();
        assert!(
            mild.meets_budget(),
            "droop {:.4}",
            mild.max_droop_fraction()
        );
    }

    #[test]
    fn dark_neighbors_relieve_droop() {
        // Mintemp-style alternating actives droop less than a solid block
        // of the same total power: dark cores' via stacks share current.
        let m = PdnModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            PdnParams::default(),
        )
        .unwrap();
        let mut checker = vec![0.0; 256];
        let mut block = vec![0.0; 256];
        for i in 0..256 {
            let (row, col) = (i / 16, i % 16);
            if (row + col) % 2 == 0 {
                checker[i] = 2.0;
            }
            if row < 8 {
                block[i] = 2.0;
            }
        }
        let dc = m.solve(&checker).unwrap().max_droop();
        let db = m.solve(&block).unwrap().max_droop();
        assert!(dc < db, "checkerboard {dc} vs block {db}");
    }

    #[test]
    fn lateral_current_stops_at_chiplet_boundaries() {
        // One hot core at a chiplet corner: with 16 chiplets its lateral
        // relief network is smaller than on the monolithic die, so its
        // droop is higher.
        let hot_core = 0usize; // lower-left corner of chiplet 0 either way
        let mut powers = vec![0.0; 256];
        powers[hot_core] = 5.0;
        // Pick a core at the *centre* of the die, which on the 4x4-chiplet
        // layout sits at a chiplet corner but on the single chip does not.
        let centre = 7 * 16 + 7;
        let mut centre_powers = vec![0.0; 256];
        centre_powers[centre] = 5.0;
        let single = PdnModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            PdnParams::default(),
        )
        .unwrap()
        .solve(&centre_powers)
        .unwrap();
        let chiplets = PdnModel::new(
            &chip(),
            &ChipletLayout::Uniform { r: 4, gap: Mm(2.0) },
            &rules(),
            PdnParams::default(),
        )
        .unwrap()
        .solve(&centre_powers)
        .unwrap();
        assert!(
            chiplets.droops()[centre] > single.droops()[centre],
            "chiplet corner {} vs monolithic centre {}",
            chiplets.droops()[centre],
            single.droops()[centre]
        );
    }

    #[test]
    fn vertical_resistance_components() {
        let p = PdnParams::default();
        let tile = chip().tile_area().value();
        let r25 = p.vertical_resistance(tile, true);
        let r2d = p.vertical_resistance(tile, false);
        assert!(r25 > r2d);
        // The RDL term dominates the 2.5D stack.
        assert!(r25 > p.r_rdl_per_core && r25 < 2.0 * p.r_rdl_per_core + 0.01);
    }

    #[test]
    fn invalid_power_rejected() {
        let m = PdnModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            PdnParams::default(),
        )
        .unwrap();
        let mut powers = uniform_powers(0.5);
        powers[3] = -1.0;
        assert!(matches!(
            m.solve(&powers),
            Err(PdnError::InvalidPower { .. })
        ));
    }

    #[test]
    fn indivisible_layout_rejected() {
        let err = PdnModel::new(
            &chip(),
            &ChipletLayout::Uniform { r: 3, gap: Mm(1.0) },
            &rules(),
            PdnParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PdnError::Layout(_)));
    }
}
