//! Property-based tests of the PDN model.

use proptest::prelude::*;
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::organization::{ChipletLayout, PackageRules};
use tac25d_floorplan::units::Mm;
use tac25d_pdn::{PdnModel, PdnParams};

fn model(r: u16, gap: f64) -> PdnModel {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let layout = if r <= 1 {
        ChipletLayout::SingleChip
    } else {
        ChipletLayout::Uniform { r, gap: Mm(gap) }
    };
    PdnModel::new(&chip, &layout, &rules, PdnParams::default()).expect("model builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Droop superposition: the network is linear, so solving the sum of
    /// two power maps equals the sum of the solutions.
    #[test]
    fn droop_superposition(
        a in 0.0..2.0f64,
        b in 0.0..2.0f64,
        core in 0usize..256,
    ) {
        let m = model(1, 0.0);
        let mut pa = vec![a; 256];
        let mut pb = vec![0.0; 256];
        pb[core] = b;
        pa[core] += 0.0;
        let sa = m.solve(&pa).unwrap();
        let sb = m.solve(&pb).unwrap();
        let combined: Vec<f64> = pa.iter().zip(&pb).map(|(x, y)| x + y).collect();
        let sc = m.solve(&combined).unwrap();
        for i in 0..256 {
            let expect = sa.droops()[i] + sb.droops()[i];
            prop_assert!((sc.droops()[i] - expect).abs() < 1e-9);
        }
    }

    /// Droop is monotone in any single core's power.
    #[test]
    fn droop_monotone_in_power(core in 0usize..256, w in 0.1..3.0f64, dw in 0.1..2.0f64) {
        let m = model(4, 2.0);
        let mut p1 = vec![0.5; 256];
        let mut p2 = p1.clone();
        p1[core] = w;
        p2[core] = w + dw;
        let d1 = m.solve(&p1).unwrap();
        let d2 = m.solve(&p2).unwrap();
        prop_assert!(d2.max_droop() >= d1.max_droop() - 1e-12);
        prop_assert!(d2.droops()[core] > d1.droops()[core]);
    }

    /// Total current equals ΣP/Vdd exactly.
    #[test]
    fn current_accounting(w in 0.0..2.0f64, actives in 1usize..256) {
        let m = model(2, 4.0);
        let mut p = vec![0.0; 256];
        for slot in p.iter_mut().take(actives) {
            *slot = w;
        }
        let s = m.solve(&p).unwrap();
        let expect = w * actives as f64 / m.params().vdd;
        prop_assert!((s.total_current() - expect).abs() < 1e-9 * expect.max(1.0));
    }

    /// The worst droop is at least the shared-rail droop (series bulk
    /// resistance times total current).
    #[test]
    fn shared_rail_lower_bound(w in 0.1..2.0f64) {
        let m = model(4, 4.0);
        let p = vec![w; 256];
        let s = m.solve(&p).unwrap();
        let bulk = s.total_current() * m.params().r_shared;
        prop_assert!(s.max_droop() >= bulk - 1e-12);
    }
}
