//! Criterion timing of the thermal substrate: steady-state solves across
//! grid resolutions and package types, and the leakage fixed-point loop.
//! These are the operations whose count the paper's 400× speedup claim is
//! about, so their absolute cost matters for harness runtimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tac25d_floorplan::prelude::*;
use tac25d_thermal::coupled::{solve_coupled, CoupledOptions};
use tac25d_thermal::model::{PackageModel, ThermalConfig};

fn model(grid: usize, layout: &ChipletLayout) -> PackageModel {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let stack = if layout.is_single_chip() {
        StackSpec::baseline_2d()
    } else {
        StackSpec::system_25d()
    };
    PackageModel::new(
        &chip,
        layout,
        &rules,
        &stack,
        ThermalConfig {
            grid,
            ..ThermalConfig::default()
        },
    )
    .expect("model builds")
}

fn sources(layout: &ChipletLayout, total: f64) -> Vec<(Rect, f64)> {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let rects = layout.chiplet_rects(&chip, &rules);
    let per = total / rects.len() as f64;
    rects.into_iter().map(|r| (r, per)).collect()
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_solve");
    group.sample_size(10);
    for grid in [16usize, 32, 64] {
        let layout = ChipletLayout::Uniform { r: 4, gap: Mm(4.0) };
        let m = model(grid, &layout);
        let s = sources(&layout, 324.0);
        group.bench_with_input(BenchmarkId::new("grid", grid), &grid, |b, _| {
            b.iter(|| m.solve(&s).expect("solve"))
        });
    }
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    c.bench_function("thermal_model_build_grid32", |b| {
        let layout = ChipletLayout::Uniform { r: 4, gap: Mm(4.0) };
        b.iter(|| model(32, &layout))
    });
}

fn bench_leakage_loop(c: &mut Criterion) {
    let layout = ChipletLayout::Uniform { r: 4, gap: Mm(4.0) };
    let m = model(32, &layout);
    let base = sources(&layout, 250.0);
    c.bench_function("thermal_leakage_fixed_point_grid32", |b| {
        b.iter(|| {
            solve_coupled(
                &m,
                |sol| {
                    let t = sol.map_or(60.0, |s| s.peak().value());
                    let scale = 1.0 + 0.004 * (t - 60.0);
                    base.iter().map(|(r, w)| (*r, w * scale)).collect()
                },
                &CoupledOptions::default(),
            )
            .expect("coupled solve")
        })
    });
}

criterion_group!(benches, bench_solve, bench_model_build, bench_leakage_loop);
criterion_main!(benches);
