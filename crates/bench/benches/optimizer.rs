//! Criterion timing of the placement search: the paper's multi-start
//! greedy versus exhaustive enumeration on one (f, p, C) candidate — the
//! wall-clock counterpart of the 400× simulation-count reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;

fn make_candidate(ev: &Evaluator, edge: f64, p: u16) -> Candidate {
    let spec = ev.spec();
    let op = spec.vf.nominal();
    let wc = spec.chip.edge().value() / 4.0;
    Candidate {
        count: ChipletCount::Sixteen,
        edge: Mm(edge),
        op,
        active_cores: p,
        ips: ev.ips(Benchmark::Hpccg, op, p),
        cost: spec.cost.assembly_cost(16, wc * wc, edge * edge).total(),
        objective: 0.0,
    }
}

fn spec() -> SystemSpec {
    let mut s = SystemSpec::fast();
    s.thermal.grid = 16;
    s
}

fn bench_greedy_vs_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_search");
    group.sample_size(10);
    // A mid-size interposer near hpccg's feasibility frontier.
    group.bench_function("greedy_10_starts", |b| {
        b.iter_with_setup(
            || Evaluator::new(spec()),
            |ev| {
                let cand = make_candidate(&ev, 34.0, 256);
                find_placement(
                    &ev,
                    Benchmark::Hpccg,
                    &cand,
                    PlacementSearch::MultiStartGreedy { starts: 10 },
                    42,
                )
                .expect("search")
            },
        )
    });
    group.bench_function("exhaustive", |b| {
        b.iter_with_setup(
            || Evaluator::new(spec()),
            |ev| {
                let cand = make_candidate(&ev, 34.0, 256);
                find_placement(
                    &ev,
                    Benchmark::Hpccg,
                    &cand,
                    PlacementSearch::Exhaustive,
                    42,
                )
                .expect("search")
            },
        )
    });
    group.finish();
}

fn bench_full_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_full");
    group.sample_size(10);
    group.bench_function("canneal_perf_only", |b| {
        b.iter_with_setup(
            || {
                let mut s = spec();
                s.edge_step = Mm(2.0);
                Evaluator::new(s)
            },
            |ev| optimize(&ev, Benchmark::Canneal, &OptimizerConfig::default()).expect("optimize"),
        )
    });
    group.finish();
}

criterion_group!(benches, bench_greedy_vs_exhaustive, bench_full_optimize);
criterion_main!(benches);
