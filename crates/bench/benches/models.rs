//! Criterion timing of the analytic models (cost, NoC, performance) — all
//! of which must be effectively free next to a thermal solve for the
//! optimizer's step-1/-2 enumeration to be negligible, as the paper
//! assumes (1.5k CPU-hours of Sniper vs 180k of HotSpot).

use criterion::{criterion_group, criterion_main, Criterion};
use tac25d_cost::CostParams;
use tac25d_floorplan::prelude::*;
use tac25d_noc::mesh::NocModel;
use tac25d_power::prelude::*;

fn bench_cost(c: &mut Criterion) {
    let params = CostParams::paper();
    c.bench_function("cost_assembly_16_chiplets", |b| {
        b.iter(|| {
            params
                .assembly_cost(16, 20.25, std::hint::black_box(1225.0))
                .total()
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let layout = ChipletLayout::Symmetric16 {
        spacing: Spacing::new(3.0, 1.5, 4.0),
    };
    let model = NocModel::paper();
    let op = VfTable::paper().nominal();
    c.bench_function("noc_mesh_power_16_chiplets", |b| {
        b.iter(|| model.power(&chip, &layout, &rules, op, std::hint::black_box(0.7)))
    });
}

fn bench_perf(c: &mut Criterion) {
    let profile = Benchmark::Cholesky.profile();
    let op = VfTable::paper().nominal();
    c.bench_function("perf_system_ips", |b| {
        b.iter(|| system_ips(&profile, op, std::hint::black_box(224)))
    });
}

fn bench_candidate_enumeration(c: &mut Criterion) {
    use tac25d_core::prelude::*;
    c.bench_function("enumerate_and_sort_candidates", |b| {
        let ev = Evaluator::new({
            let mut s = SystemSpec::fast();
            s.thermal.grid = 16;
            s
        });
        // Warm the baseline so only step-1/2 work is measured.
        let _ = single_chip_baseline(&ev, Benchmark::Canneal).expect("baseline");
        b.iter(|| {
            enumerate_candidates(
                &ev,
                Benchmark::Canneal,
                Weights::balanced(),
                &ChipletCount::both(),
            )
            .expect("enumerate")
        })
    });
}

fn bench_pdn(c: &mut Criterion) {
    use tac25d_pdn::{PdnModel, PdnParams};
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let layout = ChipletLayout::Uniform { r: 4, gap: Mm(4.0) };
    let model = PdnModel::new(&chip, &layout, &rules, PdnParams::default()).expect("pdn model");
    let powers = vec![1.0; 256];
    c.bench_function("pdn_ir_drop_solve_256_cores", |b| {
        b.iter(|| model.solve(std::hint::black_box(&powers)).expect("solve"))
    });
}

fn bench_transient_step(c: &mut Criterion) {
    use tac25d_thermal::model::{PackageModel, ThermalConfig};
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let layout = ChipletLayout::Uniform { r: 4, gap: Mm(4.0) };
    let model = PackageModel::new(
        &chip,
        &layout,
        &rules,
        &StackSpec::system_25d(),
        ThermalConfig {
            grid: 24,
            ..ThermalConfig::default()
        },
    )
    .expect("model");
    let rects = layout.chiplet_rects(&chip, &rules);
    let sources: Vec<_> = rects.into_iter().map(|r| (r, 20.0)).collect();
    let mut group = c.benchmark_group("transient");
    group.sample_size(10);
    group.bench_function("backward_euler_20_steps_grid24", |b| {
        b.iter(|| {
            model
                .simulate_transient(None, |_, _, _| sources.clone(), 1.0, 20)
                .expect("transient")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cost,
    bench_noc,
    bench_perf,
    bench_candidate_enumeration,
    bench_pdn,
    bench_transient_step
);
criterion_main!(benches);
