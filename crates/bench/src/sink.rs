//! Report emission sinks.
//!
//! [`crate::Report::finish`] renders once into a [`RenderedReport`] and
//! hands it to each sink in a fixed order, so the human-readable table,
//! the CSV file, the `---BEGIN/END TRACE---` stdout block consumed by the
//! golden-trace harness, and the obs profile/JSONL stream all share one
//! emission path. Sink order is part of the stdout contract — the golden
//! harness diffs bench output byte-for-byte: table first, then the
//! `  -> path` line, then the trace block.

use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;

use tac25d_obs as obs;

/// A report rendered to strings, ready for any sink.
pub struct RenderedReport {
    /// Report name (also the CSV file stem).
    pub name: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl RenderedReport {
    /// The CSV lines (header first) of this report.
    pub fn csv_lines(&self) -> Vec<String> {
        std::iter::once(crate::csv_line(&self.header))
            .chain(self.rows.iter().map(|r| crate::csv_line(r)))
            .collect()
    }
}

/// One destination for a finished report.
pub trait ReportSink {
    /// Emits the report; returns the output path when the sink produced a
    /// file the caller should report.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    fn emit(&self, report: &RenderedReport) -> io::Result<Option<PathBuf>>;
}

/// Prints the aligned human-readable table to stdout.
pub struct ConsoleTableSink;

impl ReportSink for ConsoleTableSink {
    fn emit(&self, report: &RenderedReport) -> io::Result<Option<PathBuf>> {
        let widths: Vec<usize> = report
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                report
                    .rows
                    .iter()
                    .map(|r| r[i].chars().count())
                    .chain([h.chars().count()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
        };
        println!("== {} ==", report.name);
        print_row(&report.header);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for r in &report.rows {
            print_row(r);
        }
        Ok(None)
    }
}

/// Writes `results/<name>.csv` and prints the `  -> path` pointer line.
pub struct CsvFileSink;

impl ReportSink for CsvFileSink {
    fn emit(&self, report: &RenderedReport) -> io::Result<Option<PathBuf>> {
        let dir = crate::results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", report.name));
        let mut f = fs::File::create(&path)?;
        for line in report.csv_lines() {
            writeln!(f, "{line}")?;
        }
        println!("  -> {}", path.display());
        Ok(Some(path))
    }
}

/// Replays the CSV between `---BEGIN/END TRACE---` markers on stdout when
/// `TAC25D_TRACE=1` (the golden-trace harness consumes these).
pub struct StdoutTraceSink;

impl ReportSink for StdoutTraceSink {
    fn emit(&self, report: &RenderedReport) -> io::Result<Option<PathBuf>> {
        if crate::trace_enabled() {
            println!("{}", crate::trace_begin(&report.name));
            for line in report.csv_lines() {
                println!("{line}");
            }
            println!("{}", crate::trace_end(&report.name));
        }
        Ok(None)
    }
}

/// Feeds the obs pipeline when observability is on: bumps
/// `bench.rows_emitted`, streams a report event plus a counter snapshot to
/// the JSONL sink, and (re)writes the `BENCH_profile.json` document so the
/// profile always reflects the run up to the latest finished report.
pub struct ObsSink;

impl ReportSink for ObsSink {
    fn emit(&self, report: &RenderedReport) -> io::Result<Option<PathBuf>> {
        if !obs::enabled() {
            return Ok(None);
        }
        obs::counter!("bench.rows_emitted").add(report.rows.len() as u64);
        obs::sink::emit_report(&report.name, report.rows.len());
        obs::sink::emit_counters_snapshot();
        obs::profile::write_profile(&crate::profile_output_path(), &crate::bin_name())?;
        // The fig8 run additionally appends to the canonical solver
        // performance record (one report per run, so one entry per run).
        if crate::bin_name() == "fig8" {
            crate::fig8bench::append_entry(
                &crate::fig8bench::fig8_bench_output_path(),
                &crate::fig8bench::current_entry(),
            )?;
        }
        Ok(None)
    }
}

/// The sinks every report flows through, in stdout-contract order.
pub fn default_sinks() -> Vec<Box<dyn ReportSink>> {
    vec![
        Box::new(ConsoleTableSink),
        Box::new(CsvFileSink),
        Box::new(StdoutTraceSink),
        Box::new(ObsSink),
    ]
}
