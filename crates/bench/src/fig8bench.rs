//! The canonical Fig. 8 solver-performance record: `BENCH_fig8.json`.
//!
//! Every observed `fig8` run appends one entry capturing the solver kind,
//! wall time and PCG effort, so the file accumulates a before/after
//! trajectory across solver changes (the legacy Jacobi baseline next to
//! the IC(0) fast path) instead of silently overwriting history. The
//! document is re-rendered from parsed known fields on each append —
//! unknown fields are dropped rather than preserved, keeping the schema
//! authoritative:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bin": "fig8",
//!   "entries": [
//!     {
//!       "solver": "ic0",
//!       "fast": true,
//!       "wall_s": 1.234,
//!       "pcg_iterations": 12345,
//!       "pcg_solves": 2317,
//!       "date": "2026-08-05",
//!       "git_rev": "abc1234",
//!       "host": "Intel(R) Xeon(R) Processor @ 2.10GHz (8 threads)"
//!     }
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use tac25d_obs as obs;
use tac25d_thermal::model::{SolverKind, ThermalConfig};

/// One recorded `fig8` run.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Entry {
    /// Solver kind the run used (`ic0`, `jacobi` or `mg`).
    pub solver: String,
    /// Whether `--fast` was passed.
    pub fast: bool,
    /// Wall-clock seconds from process start to report emission.
    pub wall_s: f64,
    /// Total PCG iterations of the run (`thermal.pcg_iterations`).
    pub pcg_iterations: u64,
    /// Total PCG solves of the run (`thermal.pcg_solves`).
    pub pcg_solves: u64,
    /// Exact coupled thermal/leakage solves of the run
    /// (`evaluator.exact_solves`) — the unit the seeded search budget is
    /// denominated in. Zero in entries recorded before the field existed.
    pub exact_solves: u64,
    /// Civil date of the run (UTC, `YYYY-MM-DD`).
    pub date: String,
    /// Short git revision, `unknown` outside a work tree.
    pub git_rev: String,
    /// CPU model and logical core count of the machine that ran the
    /// bench — wall times across entries are only comparable when this
    /// matches. Empty in entries recorded before the field existed.
    pub host: String,
}

/// Where the record goes: `BENCH_fig8.json` inside `TAC25D_RESULTS_DIR`
/// when that redirect is set (golden-harness scratch runs must not touch
/// the canonical file), otherwise at the workspace root next to
/// `BENCH_profile.json`.
pub fn fig8_bench_output_path() -> PathBuf {
    if let Ok(dir) = std::env::var("TAC25D_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir).join("BENCH_fig8.json");
        }
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("BENCH_fig8.json")
}

/// Builds the entry for the current process from the live obs registry
/// (counters), the obs epoch (wall time) and the environment.
pub fn current_entry() -> Fig8Entry {
    let counters = obs::registry::counter_snapshot();
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    Fig8Entry {
        solver: solver_name(),
        fast: crate::fast_flag(),
        wall_s: obs::uptime().as_secs_f64(),
        pcg_iterations: counter("thermal.pcg_iterations"),
        pcg_solves: counter("thermal.pcg_solves"),
        exact_solves: counter("evaluator.exact_solves"),
        date: utc_date(),
        git_rev: git_rev(),
        host: host_string(),
    }
}

/// The name of the solver the run *actually* used: `SolverKind::from_env`
/// resolved against the grid the `--fast` flag selects, so a
/// `TAC25D_SOLVER=auto` run is recorded as the concrete `mg` or `ic0`
/// path it dispatched to — entries stay comparable across selection
/// modes.
fn solver_name() -> String {
    let grid = if crate::fast_flag() {
        ThermalConfig::fast().grid
    } else {
        ThermalConfig::default().grid
    };
    SolverKind::from_env().resolve(grid).name().to_owned()
}

/// CPU model (from `/proc/cpuinfo`) plus logical core count, e.g.
/// `"Intel(R) Xeon(R) Processor @ 2.10GHz (8 threads)"`. Falls back to
/// `unknown-cpu` on platforms without `/proc`.
pub(crate) fn host_string() -> String {
    let threads = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_owned())
        })
        .unwrap_or_else(|| "unknown-cpu".to_owned());
    format!("{cpu} ({threads} threads)")
}

/// Appends `entry` to the record at `path`, preserving existing entries.
///
/// # Errors
///
/// Returns any I/O error; a present-but-unparsable document is an error
/// too (the canonical record must never be silently discarded).
pub fn append_entry(path: &Path, entry: &Fig8Entry) -> io::Result<()> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => {
            parse_entries(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    entries.push(entry.clone());
    std::fs::write(path, render(&entries))
}

fn parse_entries(text: &str) -> Result<Vec<Fig8Entry>, String> {
    let doc = obs::json::parse(text).map_err(|e| format!("BENCH_fig8.json: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_array())
        .ok_or("BENCH_fig8.json: missing entries array")?;
    entries
        .iter()
        .map(|e| {
            let str_field = |k: &str| {
                e.get(k)
                    .and_then(|v| v.as_str())
                    .map(str::to_owned)
                    .ok_or_else(|| format!("BENCH_fig8.json: entry missing {k}"))
            };
            let num_field = |k: &str| {
                e.get(k)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("BENCH_fig8.json: entry missing {k}"))
            };
            Ok(Fig8Entry {
                solver: str_field("solver")?,
                fast: matches!(e.get("fast"), Some(obs::json::Value::Bool(true))),
                wall_s: num_field("wall_s")?,
                pcg_iterations: num_field("pcg_iterations")? as u64,
                pcg_solves: num_field("pcg_solves")? as u64,
                // Absent in pre-seeding entries; 0 means "not recorded".
                exact_solves: num_field("exact_solves").unwrap_or(0.0) as u64,
                date: str_field("date")?,
                git_rev: str_field("git_rev")?,
                // Absent in pre-host entries; "" means "not recorded".
                host: str_field("host").unwrap_or_default(),
            })
        })
        .collect()
}

fn render(entries: &[Fig8Entry]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"bin\": \"fig8\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"solver\": \"{}\", \"fast\": {}, \"wall_s\": {:.3}, \
             \"pcg_iterations\": {}, \"pcg_solves\": {}, \"exact_solves\": {}, \
             \"date\": \"{}\", \"git_rev\": \"{}\", \"host\": \"{}\"}}",
            obs::json::escape(&e.solver),
            e.fast,
            e.wall_s,
            e.pcg_iterations,
            e.pcg_solves,
            e.exact_solves,
            obs::json::escape(&e.date),
            obs::json::escape(&e.git_rev),
            obs::json::escape(&e.host),
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Today's UTC civil date, `YYYY-MM-DD`, from the system clock alone
/// (no chrono dependency; Gregorian conversion via the classic
/// days-from-civil inverse).
pub(crate) fn utc_date() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Gregorian date from days since 1970-01-01 (Howard Hinnant's
/// `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// The short git revision of the workspace, `unknown` when git or the
/// repository is unavailable.
pub(crate) fn git_rev() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(solver: &str, iters: u64) -> Fig8Entry {
        Fig8Entry {
            solver: solver.to_owned(),
            fast: true,
            wall_s: 1.5,
            pcg_iterations: iters,
            pcg_solves: 10,
            exact_solves: 42,
            date: "2026-08-05".to_owned(),
            git_rev: "abc1234".to_owned(),
            host: "Test CPU (4 threads)".to_owned(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let entries = vec![entry("jacobi", 306_159), entry("ic0", 90_000)];
        let parsed = parse_entries(&render(&entries)).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn append_accumulates_history() {
        let dir = std::env::temp_dir().join("tac25d-fig8bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_fig8.json");
        let _ = std::fs::remove_file(&path);
        append_entry(&path, &entry("jacobi", 300_000)).unwrap();
        append_entry(&path, &entry("ic0", 90_000)).unwrap();
        let parsed = parse_entries(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].solver, "jacobi");
        assert_eq!(parsed[1].solver, "ic0");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unparsable_record_is_an_error_not_a_wipe() {
        let dir = std::env::temp_dir().join("tac25d-fig8bench-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_fig8.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(append_entry(&path, &entry("ic0", 1)).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "not json");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn civil_date_conversion_is_gregorian() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_670), (2026, 8, 5));
    }

    #[test]
    fn current_entry_reads_registry_and_env() {
        let e = current_entry();
        // `auto` can never appear: solver_name records the resolved path.
        assert!(e.solver == "ic0" || e.solver == "jacobi" || e.solver == "mg");
        assert_eq!(e.date.len(), 10);
        assert!(e.wall_s >= 0.0);
        assert!(!e.host.is_empty());
    }

    #[test]
    fn entries_without_host_parse_as_empty() {
        // Records written before the host field must keep parsing; the
        // field defaults to "" ("not recorded").
        let legacy = r#"{
          "schema_version": 1, "bin": "fig8",
          "entries": [
            {"solver": "ic0", "fast": true, "wall_s": 3.5,
             "pcg_iterations": 39145, "pcg_solves": 3219,
             "date": "2026-08-05", "git_rev": "7aec512"}
          ]
        }"#;
        let parsed = parse_entries(legacy).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].host, "");
        assert_eq!(parsed[0].exact_solves, 0);
    }
}
