//! Fig. 7: minimum Eq. (5) objective value versus interposer size for
//! (α, β) ∈ {(1, 0), (0, 1), (0.5, 0.5)}, for the representative
//! low-/medium-/high-power benchmarks.
//!
//! Paper trends: with α=0/β=1 the curves equal the normalized cost; with
//! α=1/β=0 they are the inverse normalized performance; the balanced
//! weights expose a per-benchmark optimal interposer size at the curve
//! minimum.

use tac25d_bench::runner::{parallel_map, spec_from_args};
use tac25d_bench::{fast_flag, fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;

fn main() -> std::io::Result<()> {
    let ev = Evaluator::new(spec_from_args());
    let benchmarks = [Benchmark::Canneal, Benchmark::Hpccg, Benchmark::Cholesky];
    let weight_sets = [
        ("a1b0", Weights::performance_only()),
        ("a0b1", Weights::cost_only()),
        ("a05b05", Weights::balanced()),
    ];
    let step = if fast_flag() { 6 } else { 2 };
    let edges: Vec<f64> = (20..=50).step_by(step).map(f64::from).collect();
    let search = PlacementSearch::MultiStartGreedy { starts: 10 };

    for &b in &benchmarks {
        let _ = single_chip_baseline(&ev, b).expect("baseline eval");
    }

    let mut items = Vec::new();
    for &b in &benchmarks {
        for (wname, w) in weight_sets {
            for &e in &edges {
                items.push((b, wname, w, e));
            }
        }
    }
    let results = parallel_map(items.clone(), |&(b, _, w, e)| {
        // Best over both chiplet counts at this edge.
        let mut best: Option<f64> = None;
        for count in [ChipletCount::Four, ChipletCount::Sixteen] {
            if let Some(org) =
                best_at_edge(&ev, b, w, count, Mm(e), search, 42).expect("search error")
            {
                let obj = org.candidate.objective;
                best = Some(best.map_or(obj, |x: f64| x.min(obj)));
            }
        }
        best
    });

    let mut header = vec!["interposer_mm".to_owned()];
    for &b in &benchmarks {
        for (wname, _) in weight_sets {
            header.push(format!("{}_{}", b.name(), wname));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut report = Report::new("fig7", &header_refs);

    for &e in &edges {
        let mut row = vec![fmt(e, 0)];
        for &b in &benchmarks {
            for (wname, _) in weight_sets {
                let idx = items
                    .iter()
                    .position(|&(ib, iw, _, ie)| ib == b && iw == wname && ie == e)
                    .expect("item exists");
                row.push(results[idx].map_or("-".into(), |o| fmt(o, 3)));
            }
        }
        report.row(&row);
    }
    report.finish()?;

    // The balanced-weights optimum per benchmark (the paper quotes
    // cholesky's at 31 mm with 192 cores at 1 GHz).
    println!();
    for &b in &benchmarks {
        let best = edges
            .iter()
            .filter_map(|&e| {
                let idx = items
                    .iter()
                    .position(|&(ib, iw, _, ie)| ib == b && iw == "a05b05" && ie == e)?;
                results[idx].map(|o| (e, o))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("objective finite"));
        if let Some((e, o)) = best {
            println!(
                "{:<14} balanced-weight optimum at {e:.0} mm (objective {o:.3})",
                b.name()
            );
        }
    }
    Ok(())
}
