//! Load generator for `tac25d serve`: measures the cross-request
//! amortization the daemon's shared warm caches buy over the naive
//! one-process-per-request deployment, and appends the result to
//! `BENCH_serve.json`.
//!
//! Two phases over the same pinned request mix:
//!
//! 1. **Naive baseline** — a fresh, cold [`EngineState`] per request,
//!    sequential. Every request pays model assembly and factorization
//!    from scratch, exactly as a one-shot CLI invocation would.
//! 2. **Served steady state** — one daemon on an ephemeral port, shared
//!    engine, N concurrent keep-alive clients cycling the mix. After the
//!    first pass every request is a canonical-cache hit.
//!
//! Usage: `loadgen [--clients N] [--requests N] [--naive N] [--check]`
//!
//! `--requests` is per client. `--check` exits nonzero unless the
//! measured speedup is ≥ 5× and the daemon observed cache hits — the CI
//! gate for the amortization claim.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tac25d_bench::servebench::{
    append_entry, percentile_us, serve_bench_output_path, stamp, ServeEntry,
};
use tac25d_core::prelude::SystemSpec;
use tac25d_obs as obs;
use tac25d_serve::client::Client;
use tac25d_serve::engine::EngineState;
use tac25d_serve::protocol::EvaluateRequest;
use tac25d_serve::server::{start, ServerConfig};

/// The pinned request mix: distinct layouts and benchmarks so the warm
/// cache holds several packages, not one.
const MIX: &[&str] = &[
    r#"{"benchmark": "hpccg", "layout": "uniform:4,6"}"#,
    r#"{"benchmark": "shock", "layout": "uniform:4,6"}"#,
    r#"{"benchmark": "cholesky", "layout": "uniform:2,4"}"#,
    r#"{"benchmark": "hpccg", "layout": "sym4:5"}"#,
    r#"{"benchmark": "canneal", "layout": "uniform:4,6", "freq_mhz": 800}"#,
    r#"{"benchmark": "shock", "layout": "2d"}"#,
    r#"{"benchmark": "swaptions", "layout": "sym16:4,2,5"}"#,
    r#"{"benchmark": "streamcluster", "layout": "uniform:2,4", "cores": 192}"#,
];

fn spec() -> SystemSpec {
    let mut spec = SystemSpec::fast();
    spec.thermal.grid = 16;
    spec
}

fn parsed_mix() -> Vec<EvaluateRequest> {
    MIX.iter()
        .map(|body| {
            EvaluateRequest::from_json(&obs::json::parse(body).expect("mix body parses"))
                .expect("mix body is a valid request")
        })
        .collect()
}

fn counter(name: &str) -> u64 {
    obs::registry::counter_snapshot()
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

fn main() {
    let clients: usize = tac25d_bench::arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let per_client: usize = tac25d_bench::arg_value("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let naive_n: usize = tac25d_bench::arg_value("--naive")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let check = std::env::args().any(|a| a == "--check");

    // Phase 1: naive baseline. A fresh engine per request — cold caches,
    // sequential — is what "one process per request" costs.
    let mix = parsed_mix();
    eprintln!("loadgen: naive baseline ({naive_n} requests, cold engine each) ...");
    let naive_start = Instant::now();
    for i in 0..naive_n {
        let engine = EngineState::new(spec());
        let result = engine.evaluate(&mix[i % mix.len()], None);
        assert_eq!(result.status, 200, "naive request failed: {}", result.body);
    }
    let naive_elapsed = naive_start.elapsed();
    let naive_rps = naive_n as f64 / naive_elapsed.as_secs_f64();
    eprintln!(
        "loadgen: naive {naive_n} requests in {:.2}s -> {naive_rps:.2} req/s",
        naive_elapsed.as_secs_f64()
    );

    // Phase 2: the daemon. One warmup pass fills the shared caches, then
    // concurrent keep-alive clients measure steady state.
    let engine = Arc::new(EngineState::new(spec()));
    let handle = start(ServerConfig::default(), engine).expect("bind ephemeral port");
    let addr = handle.local_addr().to_string();
    eprintln!("loadgen: daemon on {addr}, warmup pass ...");
    {
        let mut warm = Client::connect(&addr).expect("connect for warmup");
        for body in MIX {
            let r = warm.post("/v1/evaluate", body).expect("warmup request");
            assert_eq!(r.status, 200, "warmup failed: {}", r.text());
        }
    }

    let hits_before = counter("evaluator.cache_hits");
    let joins_before = counter("evaluator.singleflight_joins");
    // Server-side handle-time histogram for successful evaluates (the
    // daemon shares this process's registry). Reset after warmup so the
    // steady-state percentiles exclude the cold-cache fills.
    let evaluate_hist = obs::registry::histogram("serve.evaluate.2xx_handle_us");
    evaluate_hist.reset();
    let total_requests = clients * per_client;
    eprintln!("loadgen: steady state ({clients} clients x {per_client} requests) ...");
    let errors = Arc::new(AtomicU64::new(0));
    let served_start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || -> Vec<u64> {
                let mut client = Client::connect(&addr).expect("connect client");
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let body = MIX[(c + i) % MIX.len()];
                    let t = Instant::now();
                    match client.post("/v1/evaluate", body) {
                        Ok(r) if r.status == 200 => {
                            latencies.push(t.elapsed().as_micros() as u64);
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(total_requests);
    for worker in workers {
        latencies.extend(worker.join().expect("client thread"));
    }
    let served_elapsed = served_start.elapsed();
    handle.shutdown();

    let failed = errors.load(Ordering::Relaxed);
    assert_eq!(failed, 0, "{failed} served requests failed");
    latencies.sort_unstable();
    let served_rps = latencies.len() as f64 / served_elapsed.as_secs_f64();
    let speedup = served_rps / naive_rps;
    let cache_hits = counter("evaluator.cache_hits").saturating_sub(hits_before);
    let joins = counter("evaluator.singleflight_joins").saturating_sub(joins_before);
    let p50 = percentile_us(&latencies, 50.0);
    let p99 = percentile_us(&latencies, 99.0);
    let evaluate_p50 = evaluate_hist.percentile_upper_bound(50.0);
    let evaluate_p99 = evaluate_hist.percentile_upper_bound(99.0);

    let entry = stamp(ServeEntry {
        clients: clients as u64,
        requests: latencies.len() as u64,
        naive_rps,
        served_rps,
        speedup,
        p50_us: p50,
        p99_us: p99,
        evaluate_p50_us: evaluate_p50,
        evaluate_p99_us: evaluate_p99,
        cache_hits,
        singleflight_joins: joins,
        date: String::new(),
        git_rev: String::new(),
        host: String::new(),
    });
    let path = serve_bench_output_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = append_entry(&path, &entry) {
        eprintln!("loadgen: failed to record {}: {e}", path.display());
        std::process::exit(1);
    }

    println!("loadgen results ({} served requests):", latencies.len());
    println!("  naive      {naive_rps:>10.2} req/s  (cold engine per request)");
    println!("  served     {served_rps:>10.2} req/s  ({clients} keep-alive clients)");
    println!("  speedup    {speedup:>10.2}x");
    println!("  latency    p50 {p50} us, p99 {p99} us (client-observed)");
    println!(
        "  evaluate   p50 <= {evaluate_p50} us, p99 <= {evaluate_p99} us (server handle time)"
    );
    println!("  warm state {cache_hits} cache hits, {joins} single-flight joins");
    println!("  recorded   {}", path.display());

    if check {
        let mut ok = true;
        if speedup < 5.0 {
            eprintln!("loadgen --check: FAIL speedup {speedup:.2}x < 5x");
            ok = false;
        }
        if cache_hits == 0 {
            eprintln!("loadgen --check: FAIL no evaluator cache hits observed");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("loadgen --check: PASS (speedup >= 5x, warm caches exercised)");
    }
}
