//! Fig. 8: the chiplet organizations chosen by the optimizer (α = 1,
//! β = 0) under 85 °C versus the single-chip baseline, per benchmark —
//! frequency, active core count, interposer size, spacings, performance
//! gain and cost delta.
//!
//! Paper anchors: cholesky gains ≈80% by raising frequency (533 MHz →
//! 1 GHz); hpccg gains ≈40% by activating 256 instead of 160 cores while
//! cutting cost ≈28%; canneal gains ≈7% (saturates at 192 cores) and cuts
//! cost ≈36%.

use tac25d_bench::runner::{
    benchmarks_from_args, parallel_map_by_cost, seed_from_args, spec_from_args,
};
use tac25d_bench::{fmt, Report};
use tac25d_core::optimizer::SeedMode;
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::ChipletLayout;

fn main() -> std::io::Result<()> {
    let benchmarks = benchmarks_from_args();
    // Default path: analytic-seeded draft-then-verify search under
    // surrogate screening. `TAC25D_SEED_MODE=off` restores the exact
    // legacy search bit-for-bit (shared evaluator, exact fidelity).
    let seeded = SeedMode::default().enabled();
    let legacy_ev = (!seeded).then(|| Evaluator::new(spec_from_args()));

    // Hotter benchmarks walk a longer feasibility frontier (more throttled
    // operating points probed before a feasible organization appears), so
    // nominal core power is a deterministic proxy for per-benchmark search
    // cost: dispatching the hot ones first keeps the slowest search off
    // the tail of the schedule.
    let results = parallel_map_by_cost(
        benchmarks.clone(),
        |b| b.profile().core_power_nominal,
        |&b| match &legacy_ev {
            Some(ev) => {
                optimize(ev, b, &OptimizerConfig::with_seed(seed_from_args())).expect("optimize")
            }
            None => {
                // A fresh evaluator per benchmark keeps the corrector's
                // training history a function of this benchmark alone, so
                // the chosen organizations are deterministic under any
                // thread schedule.
                let ev = Evaluator::with_surrogate(spec_from_args(), SurrogateConfig::default());
                let cfg = OptimizerConfig {
                    fidelity: Fidelity::surrogate_default(),
                    ..OptimizerConfig::with_seed(seed_from_args())
                };
                optimize(&ev, b, &cfg).expect("optimize")
            }
        },
    );

    let mut report = Report::new(
        "fig8",
        &[
            "benchmark",
            "base_mhz",
            "base_cores",
            "opt_mhz",
            "opt_cores",
            "interposer_mm",
            "layout",
            "perf_gain_pct",
            "cost_delta_pct",
            "peak_c",
        ],
    );
    for (b, r) in benchmarks.iter().zip(&results) {
        let base = &r.baseline;
        match &r.best {
            Some(best) => {
                let spacing = match best.layout {
                    ChipletLayout::Symmetric4 { s3 } => format!("4c s3={:.1}", s3.value()),
                    ChipletLayout::Symmetric16 { spacing } => format!(
                        "16c s1={:.1} s2={:.1} s3={:.1}",
                        spacing.s1.value(),
                        spacing.s2.value(),
                        spacing.s3.value()
                    ),
                    other => format!("{other}"),
                };
                report.row(&[
                    b.name().to_owned(),
                    fmt(base.op.freq_mhz, 0),
                    base.active_cores.to_string(),
                    fmt(best.candidate.op.freq_mhz, 0),
                    best.candidate.active_cores.to_string(),
                    fmt(best.candidate.edge.value(), 1),
                    spacing,
                    fmt((best.normalized_perf - 1.0) * 100.0, 1),
                    fmt((best.normalized_cost - 1.0) * 100.0, 1),
                    fmt(best.peak.value(), 1),
                ]);
            }
            None => report.row(&[
                b.name().to_owned(),
                fmt(base.op.freq_mhz, 0),
                base.active_cores.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "infeasible".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    report.finish()?;
    Ok(())
}
