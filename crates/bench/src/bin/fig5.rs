//! Fig. 5: peak temperature versus uniform chiplet spacing for the
//! single-chip case (0 mm) and 2.5D systems with 4, 16, 64 and 256
//! chiplets, all 256 cores active at 1 GHz, for every benchmark.
//!
//! Paper trends: peak temperature falls with spacing; high-power
//! benchmarks (shock, blackscholes, cholesky) need a 16-chiplet system
//! with wide spacing to reach 85 °C, while low-power ones (canneal,
//! swaptions) get there with 16 chiplets at ≈4 mm or 4 chiplets at ≈8 mm.

use tac25d_bench::runner::{benchmarks_from_args, parallel_map, spec_from_args};
use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::{ChipletLayout, Mm};

fn main() -> std::io::Result<()> {
    let ev = Evaluator::new(spec_from_args());
    let benchmarks = benchmarks_from_args();
    let counts: [(u16, &str); 4] = [(2, "n4"), (4, "n16"), (8, "n64"), (16, "n256")];
    let spacings: Vec<f64> = (0..=20).map(|i| 0.5 * f64::from(i)).collect();

    let mut items = Vec::new();
    for &b in &benchmarks {
        for &(r, _) in &counts {
            for &gap in &spacings {
                items.push((b, r, gap));
            }
        }
    }
    let op = ev.spec().vf.nominal();
    let peaks = parallel_map(items.clone(), |&(b, r, gap)| {
        let layout = ChipletLayout::Uniform { r, gap: Mm(gap) };
        let spec = ev.spec();
        if layout
            .interposer_edge(&spec.chip, &spec.rules)
            .is_some_and(|e| e.value() > spec.rules.max_interposer.value() + 1e-9)
        {
            return None;
        }
        ev.evaluate(&layout, b, op, 256)
            .ok()
            .map(|e| e.peak.value())
    });

    let mut report = Report::new(
        "fig5",
        &[
            "benchmark",
            "spacing_mm",
            "single_chip",
            "n4",
            "n16",
            "n64",
            "n256",
        ],
    );
    for &b in &benchmarks {
        let chip_peak = ev
            .evaluate(&ChipletLayout::SingleChip, b, op, 256)
            .expect("baseline evaluation")
            .peak
            .value();
        for &gap in &spacings {
            let mut row = vec![b.name().to_owned(), fmt(gap, 1)];
            row.push(if gap == 0.0 {
                fmt(chip_peak, 1)
            } else {
                "-".into()
            });
            for &(r, _) in &counts {
                let idx = items
                    .iter()
                    .position(|&(ib, ir, ig)| ib == b && ir == r && ig == gap)
                    .expect("item exists");
                row.push(peaks[idx].map_or("-".into(), |t| fmt(t, 1)));
            }
            report.row(&row);
        }
    }
    report.finish()?;

    // Paper anchor check: where does each benchmark first meet 85 °C?
    println!();
    println!("first spacing meeting 85°C:");
    for &b in &benchmarks {
        let mut line = format!("  {:<14}", b.name());
        for &(r, label) in &counts {
            let hit = spacings.iter().find(|&&gap| {
                items
                    .iter()
                    .position(|&(ib, ir, ig)| ib == b && ir == r && ig == gap)
                    .and_then(|i| peaks[i])
                    .is_some_and(|t| t <= 85.0)
            });
            line.push_str(&match hit {
                Some(g) => format!("  {label}:{g:>4.1}mm"),
                None => format!("  {label}:   --"),
            });
        }
        println!("{line}");
    }
    Ok(())
}
