//! Extension experiment: the performance/cost Pareto frontier of chiplet
//! organizations.
//!
//! Fig. 7 shows three (α, β) points; sweeping the weight continuously
//! exposes the whole trade-off curve a designer actually navigates. For
//! each α ∈ {0, 0.1, …, 1.0} (β = 1 − α) the optimizer picks an
//! organization; the set of non-dominated (normalized IPS, normalized
//! cost) points is the frontier.

use tac25d_bench::runner::{seed_from_args, spec_from_args};
use tac25d_bench::{benchmark_filter, fmt, Report};
use tac25d_core::prelude::*;

fn main() -> std::io::Result<()> {
    let ev = Evaluator::new(spec_from_args());
    // Default to the three representative benchmarks (the full-suite sweep
    // is 88 optimizations; select one with --benchmark to go deeper).
    let benchmarks: Vec<Benchmark> = match benchmark_filter() {
        Some(name) => vec![Benchmark::all()
            .into_iter()
            .find(|b| b.name() == name)
            .unwrap_or_else(|| panic!("unknown benchmark {name:?}"))],
        None => vec![Benchmark::Canneal, Benchmark::Hpccg, Benchmark::Cholesky],
    };
    let mut report = Report::new(
        "pareto",
        &[
            "benchmark",
            "alpha",
            "norm_ips",
            "norm_cost",
            "interposer_mm",
            "chiplets",
            "dominated",
        ],
    );
    for &b in &benchmarks {
        let mut points = Vec::new();
        for step in 0..=10 {
            let alpha = f64::from(step) / 10.0;
            let cfg = OptimizerConfig {
                weights: Weights::new(alpha, 1.0 - alpha),
                ..OptimizerConfig::with_seed(seed_from_args())
            };
            let r = optimize(&ev, b, &cfg).expect("optimize");
            if let Some(best) = r.best {
                points.push((
                    alpha,
                    best.normalized_perf,
                    best.normalized_cost,
                    best.candidate.edge.value(),
                    best.candidate.count.n(),
                ));
            }
        }
        for &(alpha, perf, cost, edge, n) in &points {
            let dominated = points
                .iter()
                .any(|&(_, p2, c2, ..)| p2 >= perf && c2 <= cost && (p2 > perf || c2 < cost));
            report.row(&[
                b.name().to_owned(),
                fmt(alpha, 1),
                fmt(perf, 3),
                fmt(cost, 3),
                fmt(edge, 1),
                n.to_string(),
                dominated.to_string(),
            ]);
        }
    }
    report.finish()?;
    Ok(())
}
