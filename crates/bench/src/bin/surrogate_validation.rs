//! Surrogate validation: the two-tier thermal surrogate (Green's-function
//! superposition + online residual corrector) against the exact coupled
//! solver, on the paper's own workloads.
//!
//! Two sections:
//!
//! 1. **Accuracy** (Fig. 5 configurations): uniform-spacing sweeps at 4 and
//!    16 chiplets, predicting each point *before* the exact solve is added
//!    to the training set — an honest online protocol. Reports raw-kernel
//!    and corrected errors versus the exact peak.
//! 2. **Organizer speedup** (Fig. 8 run): the full optimizer per benchmark,
//!    exact fidelity versus surrogate-screened fidelity, comparing the
//!    chosen organization, the exact thermal solves spent, and the
//!    |ΔT| of every verified prediction.
//!
//! Every screened result is still exact-solver-backed: the surrogate only
//! skips placements whose trusted prediction clears the threshold by more
//! than the guard band.

use std::time::Instant;

use tac25d_bench::runner::{benchmarks_from_args, parallel_map, seed_from_args, spec_from_args};
use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::{ChipletLayout, Mm};

fn main() -> std::io::Result<()> {
    let benchmarks = benchmarks_from_args();

    // -- Section 1: online prediction accuracy on Fig. 5 sweeps. --------
    let acc = parallel_map(benchmarks.clone(), |&b| accuracy_case(b));
    let mut report = Report::new(
        "surrogate_accuracy",
        &[
            "benchmark",
            "probes",
            "trusted",
            "raw_max_err_c",
            "corr_max_err_c",
            "corr_mean_err_c",
        ],
    );
    for (b, a) in benchmarks.iter().zip(&acc) {
        report.row(&[
            b.name().to_owned(),
            a.probes.to_string(),
            a.trusted.to_string(),
            fmt(a.raw_max, 2),
            fmt(a.corr_max, 2),
            fmt(a.corr_mean(), 2),
        ]);
    }
    report.finish()?;
    println!();

    // -- Section 2: organizer speedup on the Fig. 8 run. ----------------
    let org = parallel_map(benchmarks.clone(), |&b| organizer_case(b));
    let mut report = Report::new(
        "surrogate_validation",
        &[
            "benchmark",
            "exact_sims",
            "screened_sims",
            "sims_ratio",
            "skips",
            "verified",
            "fallbacks",
            "kernel_solves",
            "max_err_c",
            "mean_err_c",
            "exact_choice",
            "screened_choice",
            "match",
            "speedup",
        ],
    );
    let (mut exact_total, mut screened_total) = (0usize, 0usize);
    let mut max_err = 0.0f64;
    let mut matches = 0usize;
    for (b, o) in benchmarks.iter().zip(&org) {
        exact_total += o.exact_sims;
        screened_total += o.screened_sims;
        max_err = max_err.max(o.max_err);
        matches += usize::from(o.matched);
        report.row(&[
            b.name().to_owned(),
            o.exact_sims.to_string(),
            o.screened_sims.to_string(),
            fmt(o.exact_sims as f64 / o.screened_sims.max(1) as f64, 1),
            o.skips.to_string(),
            o.verified.to_string(),
            o.fallbacks.to_string(),
            o.kernel_solves.to_string(),
            fmt(o.max_err, 2),
            o.mean_err.map_or_else(|| "-".to_owned(), |e| fmt(e, 2)),
            o.exact_choice.clone(),
            o.screened_choice.clone(),
            o.matched.to_string(),
            format!("{:.1}x", o.speedup),
        ]);
    }
    report.finish()?;

    println!();
    println!(
        "organization match: {}/{}   exact thermal solves: {} -> {} ({:.1}x fewer)   \
         verified-prediction max |dT|: {:.2} C",
        matches,
        benchmarks.len(),
        exact_total,
        screened_total,
        exact_total as f64 / screened_total.max(1) as f64,
        max_err,
    );
    Ok(())
}

struct AccResult {
    probes: usize,
    trusted: usize,
    raw_max: f64,
    corr_max: f64,
    corr_sum: f64,
}

impl AccResult {
    fn corr_mean(&self) -> f64 {
        if self.trusted == 0 {
            0.0
        } else {
            self.corr_sum / self.trusted as f64
        }
    }
}

/// Sweeps the Fig. 5 uniform-spacing lattice, predicting each point before
/// its exact solve joins the training set.
fn accuracy_case(b: Benchmark) -> AccResult {
    let ev = Evaluator::with_surrogate(spec_from_args(), SurrogateConfig::default());
    let spec = ev.spec();
    let op = spec.vf.nominal();
    let mut out = AccResult {
        probes: 0,
        trusted: 0,
        raw_max: 0.0,
        corr_max: 0.0,
        corr_sum: 0.0,
    };
    for &r in &[2u16, 4] {
        for i in 0..=20 {
            let gap = 0.5 * f64::from(i);
            let layout = ChipletLayout::Uniform { r, gap: Mm(gap) };
            let fits = layout
                .interposer_edge(&spec.chip, &spec.rules)
                .is_some_and(|e| e.value() <= spec.rules.max_interposer.value() + 1e-9);
            if !fits {
                continue;
            }
            // Predict first: the exact solve below trains the corrector.
            let pred = ev.predict_peak(&layout, b, op, 256);
            let Ok(exact) = ev.evaluate(&layout, b, op, 256) else {
                continue;
            };
            if !exact.converged {
                continue;
            }
            let Some(pred) = pred else { continue };
            out.probes += 1;
            out.raw_max = out
                .raw_max
                .max((pred.raw_peak_c - exact.peak.value()).abs());
            if pred.trusted {
                out.trusted += 1;
                let err = (pred.corrected_peak_c - exact.peak.value()).abs();
                out.corr_max = out.corr_max.max(err);
                out.corr_sum += err;
            }
        }
    }
    out
}

struct OrgResult {
    exact_sims: usize,
    screened_sims: usize,
    skips: usize,
    verified: usize,
    fallbacks: usize,
    kernel_solves: usize,
    max_err: f64,
    mean_err: Option<f64>,
    exact_choice: String,
    screened_choice: String,
    matched: bool,
    speedup: f64,
}

/// One Fig. 8 organizer run per fidelity, on fresh evaluators so the
/// thermal-simulation accounting is honest.
fn organizer_case(b: Benchmark) -> OrgResult {
    let signature = |r: &OptimizeResult| {
        r.best.as_ref().map(|o| {
            (
                o.candidate.op.freq_mhz as u32,
                o.candidate.active_cores,
                (o.candidate.edge.value() * 2.0).round() as i64,
            )
        })
    };
    let describe = |r: &OptimizeResult| {
        r.best.as_ref().map_or_else(
            || "-".to_owned(),
            |o| {
                format!(
                    "{:.0}MHz/{}c/{:.0}mm",
                    o.candidate.op.freq_mhz,
                    o.candidate.active_cores,
                    o.candidate.edge.value()
                )
            },
        )
    };

    let exact_ev = Evaluator::new(spec_from_args());
    let t0 = Instant::now();
    let exact = optimize(&exact_ev, b, &OptimizerConfig::with_seed(seed_from_args()))
        .expect("exact optimize");
    let exact_wall = t0.elapsed().as_secs_f64();

    let scr_ev = Evaluator::with_surrogate(spec_from_args(), SurrogateConfig::default());
    let cfg = OptimizerConfig {
        fidelity: Fidelity::surrogate_default(),
        ..OptimizerConfig::with_seed(seed_from_args())
    };
    let t1 = Instant::now();
    let screened = optimize(&scr_ev, b, &cfg).expect("screened optimize");
    let screened_wall = t1.elapsed().as_secs_f64();

    OrgResult {
        exact_sims: exact.stats.thermal_sims,
        screened_sims: screened.stats.thermal_sims,
        skips: screened.stats.surrogate_skips,
        verified: screened.stats.surrogate_verifications,
        fallbacks: screened.stats.surrogate_fallbacks,
        kernel_solves: scr_ev.surrogate().map_or(0, |s| s.kernel_solves()),
        max_err: screened.stats.surrogate_max_abs_error_c,
        mean_err: screened.stats.surrogate_mean_abs_error_c(),
        exact_choice: describe(&exact),
        screened_choice: describe(&screened),
        matched: signature(&exact) == signature(&screened),
        speedup: exact_wall / screened_wall.max(1e-9),
    }
}
