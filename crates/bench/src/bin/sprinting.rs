//! Extension experiment (related-work quantification): computational
//! sprinting headroom of 2.5D organizations versus the single chip.
//!
//! Computational sprinting (Raghavan et al., HPCA'12 — paper ref. [7])
//! violates the steady-state power budget for short bursts and relies on
//! thermal capacitance. A thermally-aware 2.5D organization starts from a
//! lower steady-state temperature and spreads heat better, so it sustains
//! the same sprint for longer. This experiment runs the transient solver:
//! from the steady state of a sustainable operating point, all 256 cores
//! sprint at 1 GHz; we record how long each package stays under 85 °C.

use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;
use tac25d_floorplan::raster::place_cores;
use tac25d_thermal::model::{PackageModel, ThermalConfig};

fn main() -> std::io::Result<()> {
    let spec = SystemSpec::fast();
    let benchmark = Benchmark::Cholesky;
    let profile = benchmark.profile();
    let threshold = Celsius(85.0);

    let mut report = Report::new(
        "sprinting",
        &[
            "package",
            "steady_peak_c",
            "sprint_power_w",
            "time_to_85c_s",
        ],
    );

    let cases: Vec<(&str, ChipletLayout)> = vec![
        ("single_chip", ChipletLayout::SingleChip),
        (
            "4_chiplet_s3_8mm",
            ChipletLayout::Symmetric4 { s3: Mm(8.0) },
        ),
        (
            "16_chiplet_4mm",
            ChipletLayout::Uniform { r: 4, gap: Mm(4.0) },
        ),
        (
            "16_chiplet_8mm",
            ChipletLayout::Uniform { r: 4, gap: Mm(8.0) },
        ),
    ];

    for (name, layout) in cases {
        let stack = if layout.is_single_chip() {
            &spec.stack_2d
        } else {
            &spec.stack_25d
        };
        let model = PackageModel::new(
            &spec.chip,
            &layout,
            &spec.rules,
            stack,
            ThermalConfig {
                grid: 24,
                ..spec.thermal.clone()
            },
        )
        .expect("model builds");
        let placed = place_cores(&spec.chip, &layout, &spec.rules).expect("core map");

        // Sustainable state: 533 MHz with all cores (cool enough for all
        // packages here), then sprint at the nominal point.
        let sustain_op = spec.vf.at_frequency(533.0).expect("533 MHz point");
        let sprint_op = spec.vf.nominal();
        let sources_at = |op| -> Vec<(Rect, f64)> {
            placed
                .iter()
                .map(|pc| {
                    (
                        pc.rect,
                        spec.core_power.active_power(&profile, op, Celsius(70.0)),
                    )
                })
                .collect()
        };
        let steady = model.solve(&sources_at(sustain_op)).expect("steady solve");
        let sprint_sources = sources_at(sprint_op);
        let sprint_power: f64 = sprint_sources.iter().map(|s| s.1).sum();
        let trace = model
            .simulate_transient(Some(&steady), |_, _, _| sprint_sources.clone(), 0.25, 1200)
            .expect("transient run");
        let ttl = trace.time_to_reach(threshold);
        report.row(&[
            name.to_owned(),
            fmt(steady.peak().value(), 1),
            fmt(sprint_power, 0),
            ttl.map_or("sustained".into(), |t| fmt(t, 2)),
        ]);
    }
    report.finish()?;
    println!();
    println!(
        "a package that never crosses 85°C sustains the sprint indefinitely — \
         wide 2.5D organizations turn bursts into steady state"
    );
    Ok(())
}
