//! Extension experiment (paper Sec. I): 2D vs 2.5D vs 3D integration,
//! thermally.
//!
//! The paper motivates 2.5D over 3D because stacking "exacerbates the
//! thermal issues". This table quantifies the claim on our substrate: the
//! same 256 cores and total power as (a) the monolithic chip, (b) 16
//! thermally-spaced chiplets on an interposer, and (c) a two-tier 3D stack
//! in half the footprint (the reason one stacks: area), across power
//! densities.

use tac25d_bench::{fmt, Report};
use tac25d_floorplan::prelude::*;
use tac25d_thermal::model::{PackageModel, ThermalConfig};

fn main() -> std::io::Result<()> {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let cfg = ThermalConfig {
        grid: 32,
        ..ThermalConfig::default()
    };
    let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);

    let m2d = PackageModel::new(
        &chip,
        &ChipletLayout::SingleChip,
        &rules,
        &StackSpec::baseline_2d(),
        cfg.clone(),
    )
    .expect("2D model");
    let layout_25d = ChipletLayout::Uniform { r: 4, gap: Mm(6.0) };
    let m25d = PackageModel::new(
        &chip,
        &layout_25d,
        &rules,
        &StackSpec::system_25d(),
        cfg.clone(),
    )
    .expect("2.5D model");
    // The point of 3D stacking is footprint: the same silicon in half the
    // area (edge/√2), which also halves the spreader and sink. Each tier
    // carries half the cores at the original power density.
    let chip_3d = ChipSpec::new(16, Mm(18.0 / std::f64::consts::SQRT_2), 8);
    let die_3d = Rect::from_corner(0.0, 0.0, chip_3d.edge().value(), chip_3d.edge().value());
    let m3d = PackageModel::new(
        &chip_3d,
        &ChipletLayout::SingleChip,
        &rules,
        &StackSpec::stacked_3d(),
        cfg,
    )
    .expect("3D model");

    let mut report = Report::new(
        "dimension_compare",
        &[
            "density_w_mm2",
            "total_w",
            "peak_2d",
            "peak_25d_16c_6mm",
            "peak_3d_half_footprint",
            "peak_3d_bottom_tier",
        ],
    );
    for density in [0.25, 0.5, 0.75, 1.0, 1.25, 1.5] {
        let total = density * chip.area().value();
        let p2d = m2d.solve(&[(die, total)]).expect("2D solve").peak();
        let rects = layout_25d.chiplet_rects(&chip, &rules);
        let per = total / rects.len() as f64;
        let sources: Vec<_> = rects.iter().map(|r| (*r, per)).collect();
        let p25 = m25d.solve(&sources).expect("2.5D solve").peak();
        let top = [(die_3d, total / 2.0)];
        let bottom = [(die_3d, total / 2.0)];
        let s3d = m3d.solve_tiers(&[&top, &bottom]).expect("3D solve");
        report.row(&[
            fmt(density, 2),
            fmt(total, 0),
            fmt(p2d.value(), 1),
            fmt(p25.value(), 1),
            fmt(s3d.peak().value(), 1),
            fmt(s3d.tier_peak(1).value(), 1),
        ]);
    }
    report.finish()?;
    println!();
    println!(
        "ordering at every power level: 2.5D < 2D < 3D — the paper's Sec. I \
         motivation for interposer-based integration"
    );
    Ok(())
}
