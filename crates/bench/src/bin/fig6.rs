//! Fig. 6: maximum achievable IPS and system cost versus interposer size
//! under the 85 °C threshold, normalized to the single-chip baseline, for
//! representative low-/medium-/high-power benchmarks (canneal, hpccg,
//! cholesky) and {4, 16}-chiplet organizations.
//!
//! Paper trends: IPS is a step function of interposer size (discrete f and
//! p); the cost curve is benchmark-independent; the minimum interposer
//! saves ≈36% cost at no performance loss for thermally-easy benchmarks.

use tac25d_bench::runner::{parallel_map, spec_from_args};
use tac25d_bench::{fast_flag, fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;

fn main() -> std::io::Result<()> {
    let ev = Evaluator::new(spec_from_args());
    let benchmarks = [Benchmark::Canneal, Benchmark::Hpccg, Benchmark::Cholesky];
    let step = if fast_flag() { 6 } else { 2 };
    let edges: Vec<f64> = (20..=50).step_by(step).map(f64::from).collect();
    let search = PlacementSearch::MultiStartGreedy { starts: 10 };

    // Warm the baselines serially (they are shared by every item).
    for &b in &benchmarks {
        let _ = single_chip_baseline(&ev, b).expect("baseline eval");
    }

    let mut items = Vec::new();
    for &b in &benchmarks {
        for count in [ChipletCount::Four, ChipletCount::Sixteen] {
            for &e in &edges {
                items.push((b, count, e));
            }
        }
    }
    let results = parallel_map(items.clone(), |&(b, count, e)| {
        best_at_edge(
            &ev,
            b,
            Weights::performance_only(),
            count,
            Mm(e),
            search,
            42,
        )
        .expect("search error")
        .map(|org| (org.normalized_perf, org.normalized_cost))
    });

    let mut header = vec!["interposer_mm".to_owned()];
    for &b in &benchmarks {
        header.push(format!("{}_ips_n4", b.name()));
        header.push(format!("{}_ips_n16", b.name()));
    }
    header.push("cost_n4".to_owned());
    header.push("cost_n16".to_owned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut report = Report::new("fig6", &header_refs);

    for &e in &edges {
        let mut row = vec![fmt(e, 0)];
        let mut costs = (None, None);
        for &b in &benchmarks {
            for count in [ChipletCount::Four, ChipletCount::Sixteen] {
                let idx = items
                    .iter()
                    .position(|&(ib, ic, ie)| ib == b && ic == count && ie == e)
                    .expect("item exists");
                match &results[idx] {
                    Some((perf, cost)) => {
                        row.push(fmt(*perf, 3));
                        match count {
                            ChipletCount::Four => costs.0 = Some(*cost),
                            ChipletCount::Sixteen => costs.1 = Some(*cost),
                        }
                    }
                    None => row.push("-".to_owned()),
                }
            }
        }
        row.push(costs.0.map_or("-".into(), |c| fmt(c, 3)));
        row.push(costs.1.map_or("-".into(), |c| fmt(c, 3)));
        report.row(&row);
    }
    report.finish()?;
    Ok(())
}
