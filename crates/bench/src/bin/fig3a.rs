//! Fig. 3(a): manufacturing cost of 2.5D systems versus interposer size,
//! normalized to the equivalent 18 mm × 18 mm single chip, for defect
//! densities D₀ ∈ {0.20, 0.25, 0.30} and {4, 16} chiplets, plus the cost of
//! a monolithic chip grown to the interposer size ("new 2D single chip").
//!
//! Paper anchors: 30–42% saving at the minimal interposer; cost grows with
//! interposer size; saving grows with D₀.

use tac25d_bench::{fmt, Report};
use tac25d_cost::CostParams;

fn main() -> std::io::Result<()> {
    let chip_area = 324.0;
    let densities = [0.20, 0.25, 0.30];
    let counts = [4u32, 16];

    let mut header = vec!["interposer_mm".to_owned()];
    for d0 in densities {
        for n in counts {
            header.push(format!("D0={d0:.2}_n={n}"));
        }
    }
    header.push("new_2d_chip_D0=0.25".to_owned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut report = Report::new("fig3a", &header_refs);

    for edge10 in (200..=500).step_by(10) {
        let edge = f64::from(edge10) / 10.0;
        let mut row = vec![fmt(edge, 1)];
        for d0 in densities {
            let params = CostParams::paper().with_defect_density(d0);
            let c2d = params.single_chip_cost(chip_area);
            for n in counts {
                let c = params
                    .assembly_cost(n, chip_area / f64::from(n), edge * edge)
                    .total();
                row.push(fmt(c / c2d, 3));
            }
        }
        let params = CostParams::paper();
        let grown = params.single_chip_cost(edge * edge) / params.single_chip_cost(chip_area);
        row.push(fmt(grown, 3));
        report.row(&row);
    }
    report.finish()?;

    // Headline check: minimal-interposer savings per defect density.
    println!();
    for d0 in densities {
        let params = CostParams::paper().with_defect_density(d0);
        let c2d = params.single_chip_cost(chip_area);
        let save4 = 1.0 - params.assembly_cost(4, 81.0, 400.0).total() / c2d;
        let save16 = 1.0 - params.assembly_cost(16, 20.25, 400.0).total() / c2d;
        println!(
            "D0={d0:.2}: minimal-interposer saving 4-chiplet {:.0}%, 16-chiplet {:.0}% (paper band: 30-42%)",
            save4 * 100.0,
            save16 * 100.0
        );
    }
    Ok(())
}
