//! The "network performance matched" claim, quantified (paper Sec. III-A):
//! zero-load latency, saturation throughput and mesh power of the
//! single-chip mesh versus 2.5D organizations.
//!
//! With drivers sized for single-cycle interposer propagation, latency and
//! throughput are *identical* across layouts; only power differs (the
//! trade the paper makes explicitly — up to 8.4 W vs 3.9 W).

use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;
use tac25d_noc::latency::{average_latency, TrafficPattern};
use tac25d_noc::mesh::NocModel;
use tac25d_noc::throughput::saturation_throughput;

fn main() -> std::io::Result<()> {
    let spec = SystemSpec::paper();
    let model = NocModel::paper();
    let op = spec.vf.nominal();

    let layouts: [(&str, ChipletLayout); 4] = [
        ("single_chip", ChipletLayout::SingleChip),
        ("4_chiplet_8mm", ChipletLayout::Symmetric4 { s3: Mm(8.0) }),
        (
            "16_chiplet_2mm",
            ChipletLayout::Uniform { r: 4, gap: Mm(2.0) },
        ),
        (
            "16_chiplet_10mm",
            ChipletLayout::Uniform {
                r: 4,
                gap: Mm(10.0),
            },
        ),
    ];
    let mut report = Report::new(
        "noc_performance",
        &[
            "package",
            "avg_latency_cyc_uniform",
            "avg_latency_cyc_transpose",
            "interposer_hop_pct",
            "sat_flits_node_cyc",
            "mesh_power_w_full_load",
        ],
    );
    // Throughput depends only on the (identical) mesh, compute once.
    let sat = saturation_throughput(&spec.chip, TrafficPattern::UniformRandom, 64, 1e9);
    for (name, layout) in layouts {
        let uni = average_latency(
            &spec.chip,
            &layout,
            &spec.rules,
            &model,
            op,
            TrafficPattern::UniformRandom,
        )
        .expect("latency closes");
        let tr = average_latency(
            &spec.chip,
            &layout,
            &spec.rules,
            &model,
            op,
            TrafficPattern::Transpose,
        )
        .expect("latency closes");
        let power = model
            .power(&spec.chip, &layout, &spec.rules, op, 1.0)
            .expect("power model");
        report.row(&[
            name.to_owned(),
            fmt(uni.avg_cycles, 2),
            fmt(tr.avg_cycles, 2),
            fmt(uni.interposer_hop_fraction * 100.0, 1),
            fmt(sat.saturation_flits_per_node_cycle, 3),
            fmt(power.total(), 2),
        ]);
    }
    report.finish()?;
    println!();
    println!(
        "latency and saturation throughput are identical across packages; \
         the 2.5D system pays only power (paper: 3.9 W -> up to 8.4 W)"
    );
    Ok(())
}
