//! Ablation from Sec. III-D: "there is a tradeoff between accuracy and
//! speed for different number of starting points" — the paper settles on
//! ten. This experiment sweeps the start count and reports, over a corpus
//! of feasibility-frontier candidates, how often the greedy agrees with
//! exhaustive search and how many thermal simulations it spends.

use tac25d_bench::runner::{seed_from_args, spec_from_args};
use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;

fn main() -> std::io::Result<()> {
    let benchmarks = [Benchmark::Shock, Benchmark::Cholesky, Benchmark::Hpccg];
    let edges = [28.0, 34.0, 40.0, 46.0];
    let start_counts = [1usize, 2, 5, 10, 20];

    // Ground truth from exhaustive search (one evaluator; its cache does
    // not distort the greedy sim counts below, which use fresh ones).
    let truth: Vec<((Benchmark, f64), bool)> = {
        let ev = Evaluator::new(spec_from_args());
        benchmarks
            .iter()
            .flat_map(|&b| edges.iter().map(move |&e| (b, e)))
            .map(|(b, e)| {
                let found = find_placement(
                    &ev,
                    b,
                    &candidate(&ev, b, e),
                    PlacementSearch::Exhaustive,
                    0,
                )
                .expect("exhaustive search")
                .is_some();
                ((b, e), found)
            })
            .collect()
    };

    let mut report = Report::new(
        "starts_sweep",
        &["starts", "agreement_pct", "avg_sims_per_candidate"],
    );
    for &starts in &start_counts {
        let mut agree = 0usize;
        let mut sims = 0usize;
        for &((b, e), expected) in &truth {
            let ev = Evaluator::new(spec_from_args());
            let before = ev.thermal_sims();
            let found = find_placement(
                &ev,
                b,
                &candidate(&ev, b, e),
                PlacementSearch::MultiStartGreedy { starts },
                seed_from_args().wrapping_add(7),
            )
            .expect("greedy search")
            .is_some();
            sims += ev.thermal_sims() - before;
            agree += usize::from(found == expected);
        }
        report.row(&[
            starts.to_string(),
            fmt(100.0 * agree as f64 / truth.len() as f64, 1),
            fmt(sims as f64 / truth.len() as f64, 1),
        ]);
    }
    report.finish()?;
    println!();
    println!("(paper: ten starts agree with exhaustive search 99% of the time)");
    Ok(())
}

fn candidate(ev: &Evaluator, b: Benchmark, edge: f64) -> Candidate {
    let spec = ev.spec();
    let op = spec.vf.nominal();
    let wc = spec.chip.edge().value() / 4.0;
    Candidate {
        count: ChipletCount::Sixteen,
        edge: Mm(edge),
        op,
        active_cores: 256,
        ips: ev.ips(b, op, 256),
        cost: spec.cost.assembly_cost(16, wc * wc, edge * edge).total(),
        objective: 0.0,
    }
}
