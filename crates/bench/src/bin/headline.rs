//! The paper's headline results (abstract / Sec. V-B):
//!
//! * at the same manufacturing cost as the single chip, a thermally-aware
//!   16-chiplet 2.5D system improves performance by 41% on average and up
//!   to 87% under 85 °C (16% / 39% under 105 °C);
//! * at the same performance as the single chip, the 2.5D system cuts
//!   manufacturing cost by 36%.

use tac25d_bench::runner::{benchmarks_from_args, parallel_map, seed_from_args, spec_from_args};
use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::units::Celsius;

fn main() -> std::io::Result<()> {
    let benchmarks = benchmarks_from_args();
    let mut report = Report::new(
        "headline",
        &[
            "threshold_c",
            "benchmark",
            "iso_cost_perf_gain_pct",
            "iso_perf_cost_saving_pct",
        ],
    );
    let mut summary = Vec::new();
    for threshold in [85.0, 105.0] {
        let ev = Evaluator::new(spec_from_args().with_threshold(Celsius(threshold)));
        let rows = parallel_map(benchmarks.clone(), |&b| {
            (b, iso_cost_gain(&ev, b), iso_perf_saving(&ev, b))
        });
        let mut gains = Vec::new();
        for (b, gain, saving) in &rows {
            report.row(&[
                fmt(threshold, 0),
                b.name().to_owned(),
                gain.map_or("-".into(), |g| fmt(g * 100.0, 1)),
                saving.map_or("-".into(), |s| fmt(s * 100.0, 1)),
            ]);
            if let Some(g) = gain {
                gains.push(*g);
            }
        }
        let avg = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
        let max = gains.iter().cloned().fold(0.0, f64::max);
        summary.push((threshold, avg, max));
    }
    report.finish()?;

    println!();
    for (threshold, avg, max) in summary {
        let paper = if threshold == 85.0 {
            "41% avg / 87% max"
        } else {
            "16% avg / 39% max"
        };
        println!(
            "{threshold:.0}°C: iso-cost performance gain avg {:.0}% / max {:.0}%   (paper: {paper})",
            avg * 100.0,
            max * 100.0
        );
    }
    Ok(())
}

/// Best performance gain of a 16-chiplet system costing no more than the
/// single chip ("at the same cost as the baseline").
fn iso_cost_gain(ev: &Evaluator, b: Benchmark) -> Option<f64> {
    let cfg = OptimizerConfig {
        weights: Weights::performance_only(),
        chiplet_counts: vec![ChipletCount::Sixteen],
        ..OptimizerConfig::with_seed(seed_from_args())
    };
    let r =
        optimize_with_filter(ev, b, &cfg, |c, base| c.cost <= base.cost + 1e-9).expect("optimize");
    r.best.map(|best| best.normalized_perf - 1.0)
}

/// Best cost saving of a 2.5D system matching the single chip's
/// performance ("without performance loss").
fn iso_perf_saving(ev: &Evaluator, b: Benchmark) -> Option<f64> {
    let cfg = OptimizerConfig {
        weights: Weights::cost_only(),
        ..OptimizerConfig::with_seed(seed_from_args())
    };
    let r = optimize_with_filter(ev, b, &cfg, |c, base| c.ips.0 >= base.ips.0 - 1e-9)
        .expect("optimize");
    r.best.map(|best| 1.0 - best.normalized_cost)
}
