//! Fig. 3(b): design-space exploration — peak temperature of r×r-chiplet
//! 2.5D systems versus interposer size (uniform spacing) for synthetic
//! power densities {0.5, 1.0, 1.5, 2.0} W/mm², r from 2 to 10, plus the
//! 18 mm × 18 mm single chip as the 2D reference.
//!
//! Paper trends to reproduce: peak temperature rises with power density,
//! falls with interposer size, and falls with chiplet count at equal
//! interposer size and power density.

use tac25d_bench::runner::parallel_map;
use tac25d_bench::{fast_flag, fmt, Report};
use tac25d_floorplan::prelude::*;
use tac25d_thermal::model::{PackageModel, ThermalConfig};

fn main() -> std::io::Result<()> {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let densities = [0.5, 1.0, 1.5, 2.0];
    let rs: Vec<u16> = (2..=10).collect();
    let (grid, edge_step) = if fast_flag() { (24, 5) } else { (48, 2) };

    // Work items: (density, r, interposer edge).
    let mut items = Vec::new();
    for &density in &densities {
        for &r in &rs {
            for edge in (20..=50).step_by(edge_step) {
                items.push((density, r, f64::from(edge)));
            }
        }
    }
    let peaks = parallel_map(items.clone(), |&(density, r, edge)| {
        peak_for(&chip, &rules, grid, density, r, edge)
    });

    let mut header = vec!["density_w_mm2".to_owned(), "interposer_mm".to_owned()];
    header.extend(rs.iter().map(|r| format!("r{r}x{r}")));
    header.push("single_chip_2d".to_owned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut report = Report::new("fig3b", &header_refs);

    for &density in &densities {
        let ref_2d = single_chip_peak(&chip, &rules, grid, density);
        for edge in (20..=50).step_by(edge_step) {
            let edge = f64::from(edge);
            let mut row = vec![fmt(density, 1), fmt(edge, 0)];
            for &r in &rs {
                let idx = items
                    .iter()
                    .position(|&(d, rr, e)| d == density && rr == r && e == edge)
                    .expect("item exists");
                match peaks[idx] {
                    Some(t) => row.push(fmt(t, 1)),
                    None => row.push("-".to_owned()),
                }
            }
            row.push(fmt(ref_2d, 1));
            report.row(&row);
        }
    }
    report.finish()?;
    Ok(())
}

/// Peak temperature of an r×r uniform-spacing system at the given
/// interposer edge, or `None` if the geometry does not fit.
fn peak_for(
    chip: &ChipSpec,
    rules: &PackageRules,
    grid: usize,
    density: f64,
    r: u16,
    edge: f64,
) -> Option<f64> {
    let wc = chip.edge().value() / f64::from(r);
    let gap = (edge - 2.0 * rules.guard.value() - wc * f64::from(r)) / f64::from(r - 1);
    if gap < -1e-9 {
        return None;
    }
    let layout = ChipletLayout::Uniform {
        r,
        gap: Mm(gap.max(0.0)),
    };
    let cfg = ThermalConfig {
        grid,
        ..ThermalConfig::default()
    };
    let model = PackageModel::new(chip, &layout, rules, &StackSpec::system_25d(), cfg).ok()?;
    let sources: Vec<_> = layout
        .chiplet_rects(chip, rules)
        .into_iter()
        .map(|rect| {
            let w = density * rect.area().value();
            (rect, w)
        })
        .collect();
    Some(model.solve(&sources).ok()?.peak().value())
}

fn single_chip_peak(chip: &ChipSpec, rules: &PackageRules, grid: usize, density: f64) -> f64 {
    let cfg = ThermalConfig {
        grid,
        ..ThermalConfig::default()
    };
    let model = PackageModel::new(
        chip,
        &ChipletLayout::SingleChip,
        rules,
        &StackSpec::baseline_2d(),
        cfg,
    )
    .expect("baseline model");
    let die = Rect::from_corner(0.0, 0.0, chip.edge().value(), chip.edge().value());
    model
        .solve(&[(die, density * chip.area().value())])
        .expect("baseline solve")
        .peak()
        .value()
}
