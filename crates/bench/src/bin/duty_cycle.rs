//! Extension experiment: thermal headroom of duty-cycled workloads.
//!
//! The paper's flow holds each active core at its peak power forever (the
//! conservative steady-state check of Eq. (6)). Real workloads breathe —
//! Sniper statistics were sampled every 1 ms — and the package's thermal
//! mass absorbs bursts. For a square-wave shock workload at several duty
//! cycles and periods, this table compares the transient peak against the
//! steady-peak (the paper's check) and the average-power bound, on both
//! the single chip and a thermally-aware 16-chiplet organization.

use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;
use tac25d_power::phases::PhasedWorkload;

fn main() -> std::io::Result<()> {
    let mut spec = SystemSpec::fast();
    spec.thermal.grid = 24;
    let benchmark = Benchmark::Shock;
    let op = spec.vf.nominal();

    let mut report = Report::new(
        "duty_cycle",
        &[
            "package",
            "duty_pct",
            "period_s",
            "avg_peak_c",
            "transient_peak_c",
            "steady_peak_c",
            "headroom_absorbed_pct",
        ],
    );
    let layouts: [(&str, ChipletLayout); 2] = [
        ("single_chip", ChipletLayout::SingleChip),
        (
            "16_chiplet_4mm",
            ChipletLayout::Uniform { r: 4, gap: Mm(4.0) },
        ),
    ];
    for (name, layout) in layouts {
        for (duty, period) in [(0.3, 1.0), (0.3, 10.0), (0.6, 1.0), (0.6, 10.0)] {
            let w = PhasedWorkload::bursty(benchmark, period, duty, 0.1);
            let r = evaluate_transient(&spec, &layout, &w, op, 256, period / 20.0, 4)
                .expect("transient evaluation");
            report.row(&[
                name.to_owned(),
                fmt(duty * 100.0, 0),
                fmt(period, 1),
                fmt(r.average_peak.value(), 1),
                fmt(r.peak.value(), 1),
                fmt(r.steady_peak.value(), 1),
                fmt(r.headroom_absorbed() * 100.0, 0),
            ]);
        }
    }
    report.finish()?;
    println!();
    println!(
        "short-period bursts are absorbed almost entirely; the steady-state \
         check (Eq. (6)) is conservative by the headroom column"
    );
    Ok(())
}
