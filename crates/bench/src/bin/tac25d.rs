//! `tac25d` — command-line front end for the thermally-aware chiplet
//! organization toolkit.
//!
//! ```text
//! tac25d evaluate --benchmark shock --layout uniform:4,6 [--freq 1000] [--cores 256]
//! tac25d optimize --benchmark hpccg [--alpha 1 --beta 0] [--threshold 85]
//!                 [--starts 10] [--exhaustive] [--iso-cost]
//! tac25d cost     --chiplets 16 --edge 30 [--d0 0.25]
//! tac25d export   --layout sym16:4,2,5 --out /tmp/flp
//! ```
//!
//! Layout syntax: `2d` | `uniform:<r>,<gap-mm>` | `sym4:<s3>` |
//! `sym16:<s1>,<s2>,<s3>`.

use std::collections::HashMap;
use std::process::ExitCode;
use tac25d_core::prelude::*;
use tac25d_floorplan::hotspot::{die_floorplan, render_flp, render_ptrace};
use tac25d_floorplan::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "evaluate" => cmd_evaluate(&opts),
        "optimize" => cmd_optimize(&opts),
        "cost" => cmd_cost(&opts),
        "export" => cmd_export(&opts),
        "latency" => cmd_latency(&opts),
        "obs-report" => cmd_obs_report(&opts),
        "serve" => cmd_serve(&opts),
        "query" => cmd_query(&opts),
        "trace-report" => cmd_trace_report(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tac25d — thermally-aware chiplet organization for 2.5D systems

USAGE:
  tac25d evaluate --benchmark <name> --layout <layout> [--freq <MHz>] [--cores <p>]
  tac25d optimize --benchmark <name> [--alpha <a>] [--beta <b>] [--threshold <C>]
                  [--starts <n>] [--exhaustive] [--iso-cost] [--fast]
  tac25d cost     --chiplets <4|16> --edge <mm> [--d0 <defects/cm2>]
  tac25d export   --layout <layout> --out <dir> [--benchmark <name>]
  tac25d latency  --layout <layout> [--freq <MHz>] [--pattern uniform|neighbor|transpose]
  tac25d obs-report [--profile <BENCH_profile.json>] [--baseline <baseline.json>]
                  [--bless] [--json]
  tac25d serve    [--addr <host:port>] [--workers <n>] [--queue <n>]
                  [--deadline-ms <ms>] [--threshold <C>] [--fast] [--no-trace]
  tac25d query    --benchmark <name> (--layout <layout> | --optimize)
                  (--addr <host:port> | --local) [--freq <MHz>] [--cores <p>]
                  [--threshold <C>] [--deadline-ms <ms>] [--seed <n>] [--starts <n>]
                  [--alpha <a>] [--beta <b>] [--iso-cost] [--exhaustive] [--fast]
  tac25d trace-report (--addr <host:port> [--id <request-id>] | --file <trace.json>)
                  [--json]
  tac25d help

SUBCOMMANDS:
  evaluate    one organization at one operating point (human-readable)
  optimize    full organizer run (human-readable)
  cost        2.5D vs single-chip manufacturing cost breakdown
  export      HotSpot .flp/.ptrace and SVG for a layout
  latency     NoC latency/saturation for a layout
  obs-report  render/check an observability profile
  serve       long-running evaluation daemon (POST /v1/evaluate,
              POST /v1/optimize, GET /healthz, GET /metrics,
              GET /metrics/history, GET /v1/traces[/{id}])
  query       send one request to a daemon (--addr) or answer it locally
              (--local); prints the JSON response either way, byte-identical
  trace-report
              render a daemon's stored slow-request exemplars: the listing
              (--addr), one trace by request id (--id), or a saved document
              (--file); --json passes the raw JSON through
  help        this message

OBS-REPORT:
  Renders the timing tree and top counters of a profile written by any
  bench bin run with TAC25D_OBS/TAC25D_PROFILE set. With --baseline,
  checks drift of the guarded counters (>20% fails); with --bless,
  (re)writes the baseline from the profile. --json emits the same data
  (plus drift rows) as one machine-readable document for CI artifacts.

LAYOUTS:
  2d | uniform:<r>,<gap-mm> | sym4:<s3> | sym16:<s1>,<s2>,<s3>

BENCHMARKS:
  cholesky lu.cont blackscholes swaptions streamcluster canneal hpccg shock";

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {:?}", args[i]))?;
        let flag = matches!(
            key,
            "exhaustive"
                | "iso-cost"
                | "fast"
                | "bless"
                | "local"
                | "optimize"
                | "json"
                | "no-trace"
        );
        if flag {
            map.insert(key.to_owned(), "true".to_owned());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_owned(), value.clone());
            i += 2;
        }
    }
    Ok(map)
}

fn parse_benchmark(opts: &HashMap<String, String>) -> Result<Benchmark, String> {
    let name = opts.get("benchmark").ok_or("--benchmark is required")?;
    tac25d_serve::protocol::parse_benchmark(name)
}

// The layout grammar is shared with the serve protocol so CLI arguments
// and request bodies parse identically.
use tac25d_serve::protocol::parse_layout;

fn get_f64(opts: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad --{key} {v:?}: {e}")),
    }
}

fn make_spec(opts: &HashMap<String, String>) -> Result<SystemSpec, String> {
    let mut spec = if opts.contains_key("fast") {
        let mut s = SystemSpec::fast();
        s.thermal.grid = 24;
        s.edge_step = Mm(2.0);
        s
    } else {
        SystemSpec::fast()
    };
    spec.threshold = Celsius(get_f64(opts, "threshold", 85.0)?);
    Ok(spec)
}

fn cmd_evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    let benchmark = parse_benchmark(opts)?;
    let layout = parse_layout(opts.get("layout").ok_or("--layout is required")?)?;
    let spec = make_spec(opts)?;
    let freq = get_f64(opts, "freq", 1000.0)?;
    let cores = get_f64(opts, "cores", 256.0)? as u16;
    let op = spec
        .vf
        .at_frequency(freq)
        .ok_or_else(|| format!("no VF point at {freq} MHz (have 1000/800/533/400/320)"))?;
    let threshold = spec.threshold;
    let ev = Evaluator::new(spec);
    let e = ev
        .evaluate(&layout, benchmark, op, cores)
        .map_err(|e| e.to_string())?;
    println!("layout      : {layout}");
    println!("benchmark   : {benchmark} at {op}, {cores} active cores");
    println!(
        "peak        : {:.1}°C (threshold {threshold})",
        e.peak.value()
    );
    println!(
        "power       : {:.1} W (NoC {:.1} W)",
        e.total_power.value(),
        e.noc_power.value()
    );
    println!("performance : {}", e.ips);
    println!("feasible    : {}", e.feasible(threshold));
    Ok(())
}

fn cmd_optimize(opts: &HashMap<String, String>) -> Result<(), String> {
    let benchmark = parse_benchmark(opts)?;
    let spec = make_spec(opts)?;
    let alpha = get_f64(opts, "alpha", 1.0)?;
    let beta = get_f64(opts, "beta", 0.0)?;
    let starts = get_f64(opts, "starts", 10.0)? as usize;
    let cfg = OptimizerConfig {
        weights: Weights::new(alpha, beta),
        search: if opts.contains_key("exhaustive") {
            PlacementSearch::Exhaustive
        } else {
            PlacementSearch::MultiStartGreedy { starts }
        },
        seed: get_f64(opts, "seed", 42.0)? as u64,
        ..OptimizerConfig::default()
    };
    let ev = Evaluator::new(spec);
    let result = if opts.contains_key("iso-cost") {
        optimize_with_filter(&ev, benchmark, &cfg, |c, base| c.cost <= base.cost)
    } else {
        optimize(&ev, benchmark, &cfg)
    }
    .map_err(|e| e.to_string())?;
    let base = &result.baseline;
    println!(
        "baseline : {} with {} cores, {} (${:.0})",
        base.op, base.active_cores, base.ips, base.cost
    );
    match result.best {
        None => println!("no feasible 2.5D organization under the threshold"),
        Some(best) => {
            println!(
                "optimum  : {} at {} with {} cores",
                best.layout, best.candidate.op, best.candidate.active_cores
            );
            println!(
                "           peak {:.1}°C, ${:.0}, perf {:+.1}%, cost {:+.1}%",
                best.peak.value(),
                best.candidate.cost,
                (best.normalized_perf - 1.0) * 100.0,
                (best.normalized_cost - 1.0) * 100.0
            );
            println!(
                "search   : {} thermal simulations over {} candidates",
                result.stats.thermal_sims, result.stats.candidates_tried
            );
        }
    }
    Ok(())
}

fn cmd_cost(opts: &HashMap<String, String>) -> Result<(), String> {
    let n = get_f64(opts, "chiplets", 16.0)? as u32;
    let edge = get_f64(opts, "edge", 20.0)?;
    let d0 = get_f64(opts, "d0", 0.25)?;
    let params = tac25d_cost::CostParams::paper().with_defect_density(d0);
    let chip_area = 324.0;
    let b = params.assembly_cost(n, chip_area / f64::from(n), edge * edge);
    let c2d = params.single_chip_cost(chip_area);
    println!("chiplets ({n}x): ${:.2}", b.chiplets);
    println!("interposer    : ${:.2}", b.interposer);
    println!(
        "bonding       : ${:.2} (assembly yield {:.3})",
        b.bonding, b.assembly_yield
    );
    println!("total 2.5D    : ${:.2}", b.total());
    println!("single chip   : ${c2d:.2}");
    println!("ratio         : {:.3}", b.total() / c2d);
    Ok(())
}

fn cmd_latency(opts: &HashMap<String, String>) -> Result<(), String> {
    use tac25d_noc::latency::{average_latency, TrafficPattern};
    use tac25d_noc::mesh::NocModel;
    use tac25d_noc::throughput::saturation_throughput;
    use tac25d_power::dvfs::VfTable;

    let layout = parse_layout(opts.get("layout").ok_or("--layout is required")?)?;
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    layout.validate(&chip, &rules).map_err(|e| e.to_string())?;
    let freq = get_f64(opts, "freq", 1000.0)?;
    let op = VfTable::paper()
        .at_frequency(freq)
        .ok_or_else(|| format!("no VF point at {freq} MHz"))?;
    let pattern = match opts.get("pattern").map(String::as_str) {
        None | Some("uniform") => TrafficPattern::UniformRandom,
        Some("neighbor") => TrafficPattern::NearestNeighbor,
        Some("transpose") => TrafficPattern::Transpose,
        Some(other) => return Err(format!("unknown pattern {other:?}")),
    };
    let model = NocModel::paper();
    let lat =
        average_latency(&chip, &layout, &rules, &model, op, pattern).map_err(|e| e.to_string())?;
    let sat = saturation_throughput(&chip, pattern, model.flit_width, freq * 1e6);
    println!("layout             : {layout}");
    println!("pattern            : {pattern:?} at {op}");
    println!("avg hops           : {:.2}", lat.avg_hops);
    println!("avg latency        : {:.2} cycles", lat.avg_cycles);
    println!(
        "interposer hops    : {:.1}%",
        lat.interposer_hop_fraction * 100.0
    );
    println!(
        "saturation         : {:.3} flits/node/cycle ({:.1} Tb/s aggregate)",
        sat.saturation_flits_per_node_cycle,
        sat.aggregate_bits_per_s / 1e12
    );
    Ok(())
}

fn cmd_obs_report(opts: &HashMap<String, String>) -> Result<(), String> {
    use tac25d_obs::profile;

    let profile_path = opts
        .get("profile")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(tac25d_bench::profile_output_path);
    let doc = profile::load_json(&profile_path)?;
    let json_mode = opts.contains_key("json");

    if opts.contains_key("bless") {
        let baseline_path = opts
            .get("baseline")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(default_baseline_path);
        if let Some(parent) = baseline_path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(&baseline_path, profile::baseline_from_profile(&doc))
            .map_err(|e| e.to_string())?;
        println!("blessed baseline -> {}", baseline_path.display());
        return Ok(());
    }

    let baseline_path = opts.get("baseline").map(std::path::PathBuf::from);
    let drifts = match &baseline_path {
        Some(path) => {
            let baseline = profile::load_json(path)?;
            profile::check_drift(&doc, &baseline, profile::DRIFT_TOLERANCE)
        }
        None => Vec::new(),
    };

    if json_mode {
        // Machine-readable mirror of the table (plus drift rows when a
        // baseline was given) — CI archives this as an artifact.
        println!("{}", profile::render_report_json(&doc, &drifts));
    } else {
        print!("{}", profile::render_report(&doc));
        if baseline_path.is_some() {
            println!(
                "\nbaseline drift (tolerance {:.0}%):",
                profile::DRIFT_TOLERANCE * 100.0
            );
            for d in &drifts {
                println!(
                    "  {:<28} baseline {:>10.0}  observed {:>10.0}  drift {:>6.1}% {}",
                    d.name,
                    d.baseline,
                    d.observed,
                    d.relative * 100.0,
                    if d.exceeded { "FAIL" } else { "ok" }
                );
            }
        }
    }
    if drifts.iter().any(|d| d.exceeded) {
        return Err(format!(
            "counter drift beyond {:.0}% of {} — investigate, or re-bless with \
             `tac25d obs-report --profile {} --bless`",
            profile::DRIFT_TOLERANCE * 100.0,
            baseline_path.expect("drift implies baseline").display(),
            profile_path.display()
        ));
    }
    Ok(())
}

fn cmd_trace_report(opts: &HashMap<String, String>) -> Result<(), String> {
    let doc_text = if let Some(file) = opts.get("file") {
        std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?
    } else {
        let addr = opts
            .get("addr")
            .ok_or("--addr <host:port> or --file <trace.json> is required")?;
        let mut client =
            tac25d_serve::client::Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let path = match opts.get("id") {
            Some(id) => format!("/v1/traces/{id}"),
            None => "/v1/traces".to_owned(),
        };
        let r = client.get(&path).map_err(|e| format!("request: {e}"))?;
        if r.status != 200 {
            return Err(format!("HTTP {}: {}", r.status, r.text()));
        }
        r.text()
    };
    let doc = tac25d_obs::json::parse(&doc_text).map_err(|e| e.to_string())?;
    if opts.contains_key("json") {
        println!("{doc_text}");
    } else {
        print!("{}", tac25d_serve::telemetry::render_trace_report(&doc));
    }
    Ok(())
}

/// `tests/obs/baseline.json` at the workspace root — the committed CI
/// drift baseline.
fn default_baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| std::path::PathBuf::from("."))
        .join("tests")
        .join("obs")
        .join("baseline.json")
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    use tac25d_serve::engine::EngineState;
    use tac25d_serve::server::{install_signal_handlers, start, ServerConfig};

    let spec = make_spec(opts)?;
    let config = ServerConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8425".to_owned()),
        workers: get_f64(opts, "workers", 0.0)? as usize,
        queue_capacity: get_f64(opts, "queue", 64.0)? as usize,
        default_deadline_ms: opts
            .get("deadline-ms")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("bad --deadline-ms {v:?}: {e}"))
            })
            .transpose()?,
        tracing: !opts.contains_key("no-trace"),
    };
    install_signal_handlers();
    let engine = std::sync::Arc::new(EngineState::new(spec));
    let handle = start(config, engine).map_err(|e| format!("bind failed: {e}"))?;
    println!("tac25d serve listening on {}", handle.local_addr());
    handle.join();
    println!("tac25d serve drained and stopped");
    Ok(())
}

/// Builds the request body shared by the remote and local query paths.
fn query_body(opts: &HashMap<String, String>) -> Result<(String, bool), String> {
    use tac25d_obs::json::{obj, Value};

    let benchmark = parse_benchmark(opts)?;
    let optimize = opts.contains_key("optimize");
    let mut fields: Vec<(&str, Value)> = vec![("benchmark", Value::from(benchmark.name()))];
    if optimize {
        fields.push(("alpha", Value::from(get_f64(opts, "alpha", 1.0)?)));
        fields.push(("beta", Value::from(get_f64(opts, "beta", 0.0)?)));
        fields.push(("starts", Value::from(get_f64(opts, "starts", 10.0)? as u64)));
        fields.push(("seed", Value::from(get_f64(opts, "seed", 42.0)? as u64)));
        fields.push(("iso_cost", Value::from(opts.contains_key("iso-cost"))));
        fields.push(("exhaustive", Value::from(opts.contains_key("exhaustive"))));
    } else {
        let layout = opts.get("layout").ok_or("--layout is required")?;
        parse_layout(layout)?; // validate before shipping
        fields.push(("layout", Value::from(layout.as_str())));
        fields.push(("freq_mhz", Value::from(get_f64(opts, "freq", 1000.0)?)));
        fields.push(("cores", Value::from(get_f64(opts, "cores", 256.0)? as u64)));
    }
    fields.push((
        "threshold_c",
        Value::from(get_f64(opts, "threshold", 85.0)?),
    ));
    if let Some(ms) = opts.get("deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|e| format!("bad --deadline-ms {ms:?}: {e}"))?;
        fields.push(("deadline_ms", Value::from(ms)));
    }
    Ok((obj(fields).render(), optimize))
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    use tac25d_serve::engine::EngineState;
    use tac25d_serve::protocol::{EvaluateRequest, OptimizeRequest};

    let (body, optimize) = query_body(opts)?;
    let (status, response) = if opts.contains_key("local") {
        // One-shot local answer through the same engine code path the
        // daemon runs — byte-identical by construction.
        let engine = EngineState::new(make_spec(opts)?);
        let value = tac25d_obs::json::parse(&body).map_err(|e| e.to_string())?;
        let deadline = opts
            .get("deadline-ms")
            .and_then(|v| v.parse::<u64>().ok())
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        let result = if optimize {
            engine.optimize(&OptimizeRequest::from_json(&value)?, deadline)
        } else {
            engine.evaluate(&EvaluateRequest::from_json(&value)?, deadline)
        };
        (result.status, result.body)
    } else {
        let addr = opts
            .get("addr")
            .ok_or("--addr <host:port> or --local is required")?;
        let mut client =
            tac25d_serve::client::Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let path = if optimize {
            "/v1/optimize"
        } else {
            "/v1/evaluate"
        };
        let r = client
            .post(path, &body)
            .map_err(|e| format!("request: {e}"))?;
        (r.status, r.text())
    };
    println!("{response}");
    if status == 200 {
        Ok(())
    } else {
        Err(format!("HTTP {status}"))
    }
}

fn cmd_export(opts: &HashMap<String, String>) -> Result<(), String> {
    let layout = parse_layout(opts.get("layout").ok_or("--layout is required")?)?;
    let out = std::path::PathBuf::from(opts.get("out").ok_or("--out is required")?);
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    layout.validate(&chip, &rules).map_err(|e| e.to_string())?;
    let blocks = die_floorplan(&chip, &layout, &rules).map_err(|e| e.to_string())?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let flp = out.join("die.flp");
    std::fs::write(&flp, render_flp(&blocks)).map_err(|e| e.to_string())?;
    println!("wrote {}", flp.display());
    let svg = out.join("die.svg");
    let rendered = tac25d_floorplan::svg::render_layout_svg(&chip, &layout, &rules, None)
        .map_err(|e| e.to_string())?;
    std::fs::write(&svg, rendered).map_err(|e| e.to_string())?;
    println!("wrote {}", svg.display());
    if let Ok(benchmark) = parse_benchmark(opts) {
        let profile = benchmark.profile();
        let powers: Vec<(String, f64)> = blocks
            .iter()
            .map(|b| (b.name.clone(), profile.core_power_nominal))
            .collect();
        let ptrace = out.join("die.ptrace");
        std::fs::write(&ptrace, render_ptrace(&powers)).map_err(|e| e.to_string())?;
        println!("wrote {}", ptrace.display());
    }
    Ok(())
}
