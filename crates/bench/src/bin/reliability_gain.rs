//! Extension experiment (paper Sec. V-B, lu.cont discussion): reliability
//! gains of thermally-aware organizations.
//!
//! For every benchmark, compare the single-chip baseline's peak temperature
//! against the optimal iso-performance 2.5D organization's, and convert the
//! temperature reduction into electromigration-MTTF and thermal-cycling
//! lifetime factors. Even benchmarks with zero performance gain (lu.cont,
//! canneal) show multi-× lifetime improvements.

use tac25d_bench::runner::{benchmarks_from_args, seed_from_args, spec_from_args};
use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_power::reliability::ReliabilityModel;

fn main() -> std::io::Result<()> {
    let ev = Evaluator::new(spec_from_args());
    let benchmarks = benchmarks_from_args();
    let rel = ReliabilityModel::default();
    let ambient = ev.spec().thermal.ambient;

    let mut report = Report::new(
        "reliability_gain",
        &[
            "benchmark",
            "baseline_peak_c",
            "25d_peak_c",
            "em_mttf_factor",
            "cycle_life_factor",
        ],
    );
    for &b in &benchmarks {
        // Iso-performance, minimum cost — the "free reliability" design.
        let cfg = OptimizerConfig {
            weights: Weights::cost_only(),
            ..OptimizerConfig::with_seed(seed_from_args())
        };
        let r = optimize_with_filter(&ev, b, &cfg, |c, base| c.ips.0 >= base.ips.0 - 1e-9)
            .expect("optimize");
        let Some(best) = r.best else { continue };
        let t_base = r.baseline.peak;
        let t_25d = best.peak;
        let mttf = rel.relative_mttf(t_25d, t_base);
        let cycles = rel.relative_cycle_life(
            (t_25d.value() - ambient.value()).max(1.0),
            (t_base.value() - ambient.value()).max(1.0),
        );
        report.row(&[
            b.name().to_owned(),
            fmt(t_base.value(), 1),
            fmt(t_25d.value(), 1),
            fmt(mttf, 2),
            fmt(cycles, 2),
        ]);
    }
    report.finish()?;
    Ok(())
}
