//! Sec. III-D validation: the multi-start greedy placement search versus
//! exhaustive search.
//!
//! Paper anchors: with ten starting points the greedy reaches the same
//! result as exhaustive search 99% of the time while reducing thermal
//! simulation time by ~400× over the full flow.
//!
//! For a corpus of (benchmark, f, p, interposer-edge) combinations the
//! harness compares (a) the feasibility verdict and (b) the thermal
//! simulations each search spends. Separate evaluators keep the
//! simulation accounting honest (no shared cache).
//!
//! The same methodology is applied to the surrogate-screened greedy
//! (`Fidelity::Surrogate`): its feasibility verdict is compared against
//! the exact greedy's, demonstrating that the new fidelity tier preserves
//! the paper's solution-match property while spending fewer exact solves.

use tac25d_bench::runner::{parallel_map, seed_from_args, spec_from_args};
use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;

fn main() -> std::io::Result<()> {
    let benchmarks = [
        Benchmark::Shock,
        Benchmark::Cholesky,
        Benchmark::Hpccg,
        Benchmark::Swaptions,
        Benchmark::Canneal,
    ];
    let edges = [26.0, 32.0, 38.0, 44.0, 50.0];

    // Corpus: thermally interesting combinations near each benchmark's
    // feasibility frontier (every (f, p) at each edge would mostly be
    // trivially feasible or trivially infeasible).
    let mut cases = Vec::new();
    for &b in &benchmarks {
        for &edge in &edges {
            for &p in &[192u16, 224, 256] {
                cases.push((b, edge, p));
            }
        }
    }

    let results = parallel_map(cases.clone(), |&(b, edge, p)| run_case(b, edge, p));

    let mut report = Report::new(
        "greedy_validation",
        &[
            "benchmark",
            "edge_mm",
            "cores",
            "greedy_feasible",
            "exhaustive_feasible",
            "match",
            "greedy_sims",
            "exhaustive_sims",
            "screened_feasible",
            "screened_match",
            "screened_sims",
        ],
    );
    let mut matches = 0usize;
    let mut screened_matches = 0usize;
    let (mut gsims, mut xsims, mut ssims) = (0usize, 0usize, 0usize);
    for ((b, edge, p), r) in cases.iter().zip(&results) {
        let m = r.greedy_feasible == r.exhaustive_feasible;
        let sm = r.screened_feasible == r.greedy_feasible;
        matches += usize::from(m);
        screened_matches += usize::from(sm);
        gsims += r.greedy_sims;
        xsims += r.exhaustive_sims;
        ssims += r.screened_sims;
        report.row(&[
            b.name().to_owned(),
            fmt(*edge, 0),
            p.to_string(),
            r.greedy_feasible.to_string(),
            r.exhaustive_feasible.to_string(),
            m.to_string(),
            r.greedy_sims.to_string(),
            r.exhaustive_sims.to_string(),
            r.screened_feasible.to_string(),
            sm.to_string(),
            r.screened_sims.to_string(),
        ]);
    }
    report.finish()?;

    println!();
    println!(
        "agreement: {}/{} = {:.1}%   (paper: 99%)",
        matches,
        cases.len(),
        100.0 * matches as f64 / cases.len() as f64
    );
    println!(
        "thermal simulations: greedy {gsims}, exhaustive {xsims} -> {:.1}x fewer",
        xsims as f64 / gsims.max(1) as f64
    );
    println!(
        "surrogate-screened vs exact greedy: {}/{} = {:.1}% match, {} exact solves ({:.1}x fewer than exact greedy)",
        screened_matches,
        cases.len(),
        100.0 * screened_matches as f64 / cases.len() as f64,
        ssims,
        gsims as f64 / ssims.max(1) as f64
    );
    Ok(())
}

struct CaseResult {
    greedy_feasible: bool,
    exhaustive_feasible: bool,
    screened_feasible: bool,
    greedy_sims: usize,
    exhaustive_sims: usize,
    screened_sims: usize,
}

fn run_case(b: Benchmark, edge: f64, p: u16) -> CaseResult {
    let run = |ev: Evaluator, search: PlacementSearch, fidelity: Fidelity| {
        let spec = ev.spec();
        let op = spec.vf.nominal();
        let wc = spec.chip.edge().value() / 4.0;
        let cand = Candidate {
            count: ChipletCount::Sixteen,
            edge: Mm(edge),
            op,
            active_cores: p,
            ips: ev.ips(b, op, p),
            cost: spec.cost.assembly_cost(16, wc * wc, edge * edge).total(),
            objective: 0.0,
        };
        let cfg = OptimizerConfig {
            search,
            seed: seed_from_args(),
            fidelity,
            ..OptimizerConfig::default()
        };
        let before = ev.thermal_sims();
        let mut stats = SearchStats::default();
        let found = find_placement_with(&ev, b, &cand, &cfg, &mut stats)
            .expect("placement search")
            .is_some();
        (found, ev.thermal_sims() - before)
    };
    let greedy = PlacementSearch::MultiStartGreedy { starts: 10 };
    let (greedy_feasible, greedy_sims) =
        run(Evaluator::new(spec_from_args()), greedy, Fidelity::Exact);
    let (exhaustive_feasible, exhaustive_sims) = run(
        Evaluator::new(spec_from_args()),
        PlacementSearch::Exhaustive,
        Fidelity::Exact,
    );
    let (screened_feasible, screened_sims) = run(
        Evaluator::with_surrogate(spec_from_args(), SurrogateConfig::default()),
        greedy,
        Fidelity::surrogate_default(),
    );
    CaseResult {
        greedy_feasible,
        exhaustive_feasible,
        screened_feasible,
        greedy_sims,
        exhaustive_sims,
        screened_sims,
    }
}
