//! Numerical validation: grid-convergence study of the thermal solver.
//!
//! The paper uses a 64×64 HotSpot grid; our optimizer sweeps default to
//! 32×32. This experiment quantifies the discretization error: peak
//! temperature of representative configurations across grid resolutions,
//! so EXPERIMENTS.md can state how far the coarse grids sit from the
//! asymptote.

use tac25d_bench::{fmt, Report};
use tac25d_floorplan::prelude::*;
use tac25d_thermal::model::{PackageModel, ThermalConfig};

fn main() -> std::io::Result<()> {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let grids = [12usize, 16, 24, 32, 48, 64, 96];

    let cases: Vec<(&str, ChipletLayout, f64)> = vec![
        ("single_chip_324w", ChipletLayout::SingleChip, 324.0),
        (
            "16_chiplet_2mm_324w",
            ChipletLayout::Uniform { r: 4, gap: Mm(2.0) },
            324.0,
        ),
        (
            "16_chiplet_8mm_324w",
            ChipletLayout::Uniform { r: 4, gap: Mm(8.0) },
            324.0,
        ),
        (
            "4_chiplet_6mm_400w",
            ChipletLayout::Uniform { r: 2, gap: Mm(6.0) },
            400.0,
        ),
    ];

    let mut header = vec!["case".to_owned()];
    header.extend(grids.iter().map(|g| format!("grid{g}")));
    header.push("err32_vs_96_c".to_owned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut report = Report::new("grid_convergence", &header_refs);

    for (name, layout, watts) in cases {
        let stack = if layout.is_single_chip() {
            StackSpec::baseline_2d()
        } else {
            StackSpec::system_25d()
        };
        let mut row = vec![name.to_owned()];
        let mut peaks = Vec::new();
        for &grid in &grids {
            let model = PackageModel::new(
                &chip,
                &layout,
                &rules,
                &stack,
                ThermalConfig {
                    grid,
                    ..ThermalConfig::default()
                },
            )
            .expect("model builds");
            let rects = layout.chiplet_rects(&chip, &rules);
            let per = watts / rects.len() as f64;
            let sources: Vec<_> = rects.into_iter().map(|r| (r, per)).collect();
            let peak = model.solve(&sources).expect("solve").peak().value();
            peaks.push(peak);
            row.push(fmt(peak, 2));
        }
        let p32 = peaks[grids.iter().position(|&g| g == 32).expect("32 present")];
        let p96 = *peaks.last().expect("non-empty");
        row.push(fmt(p32 - p96, 2));
        report.row(&row);
    }
    report.finish()?;
    Ok(())
}
