//! Sec. V-B sensitivity study: average iso-cost performance improvement of
//! the thermally-aware 16-chiplet organization across all 8 benchmarks, at
//! temperature thresholds 75 / 85 / 95 / 105 °C.
//!
//! Paper anchors: 41%, 41%, 27% and 16% respectively — lower thresholds
//! throttle the baseline harder, leaving more performance to reclaim.

use tac25d_bench::runner::{benchmarks_from_args, parallel_map, seed_from_args, spec_from_args};
use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::units::Celsius;

fn main() -> std::io::Result<()> {
    let benchmarks = benchmarks_from_args();
    let thresholds = [75.0, 85.0, 95.0, 105.0];
    let paper = [41.0, 41.0, 27.0, 16.0];

    let mut report = Report::new(
        "sensitivity",
        &[
            "threshold_c",
            "avg_gain_pct",
            "max_gain_pct",
            "paper_avg_pct",
        ],
    );
    for (&threshold, &paper_avg) in thresholds.iter().zip(&paper) {
        let ev = Evaluator::new(spec_from_args().with_threshold(Celsius(threshold)));
        let gains = parallel_map(benchmarks.clone(), |&b| {
            let cfg = OptimizerConfig {
                weights: Weights::performance_only(),
                chiplet_counts: vec![ChipletCount::Sixteen],
                ..OptimizerConfig::with_seed(seed_from_args())
            };
            match optimize_with_filter(&ev, b, &cfg, |c, base| c.cost <= base.cost + 1e-9) {
                Ok(r) => r.best.map(|best| best.normalized_perf - 1.0),
                // No feasible baseline at a harsh threshold: skip.
                Err(OptimizeError::NoBaseline(_)) => None,
                Err(e) => panic!("optimize failed: {e}"),
            }
        });
        let found: Vec<f64> = gains.into_iter().flatten().collect();
        let avg = found.iter().sum::<f64>() / found.len().max(1) as f64;
        let max = found.iter().cloned().fold(0.0, f64::max);
        report.row(&[
            fmt(threshold, 0),
            fmt(avg * 100.0, 1),
            fmt(max * 100.0, 1),
            fmt(paper_avg, 0),
        ]);
    }
    report.finish()?;
    Ok(())
}
