//! Extension experiment (paper footnote 3): supply-droop feasibility of
//! reclaimed-dark-silicon operating points.
//!
//! For each benchmark's optimal 85 °C organization (from the same search as
//! `fig8`), compute the static IR drop of the per-core power map and check
//! it against a 5% droop budget. The paper acknowledges that delivering
//! ~500 W is an open engineering problem; this table shows exactly which
//! reclaimed configurations cross the budget.

use tac25d_bench::runner::{benchmarks_from_args, seed_from_args, spec_from_args};
use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_pdn::{PdnModel, PdnParams};

fn main() -> std::io::Result<()> {
    let ev = Evaluator::new(spec_from_args());
    let spec = ev.spec().clone();
    let benchmarks = benchmarks_from_args();

    let mut report = Report::new(
        "pdn_droop",
        &[
            "benchmark",
            "layout",
            "total_power_w",
            "total_current_a",
            "max_droop_mv",
            "droop_pct",
            "meets_5pct_budget",
        ],
    );
    for &b in &benchmarks {
        let result =
            optimize(&ev, b, &OptimizerConfig::with_seed(seed_from_args())).expect("optimize");
        let Some(best) = result.best else {
            continue;
        };
        let op = best.candidate.op;
        let p = best.candidate.active_cores;
        let profile = b.profile();
        // Per-core powers at the organization's operating point (leakage at
        // the organization's peak temperature — conservative).
        let active: std::collections::HashSet<_> =
            mintemp_active_cores(&spec.chip, p).into_iter().collect();
        let per_core = spec.core_power.active_power(&profile, op, best.peak);
        let powers: Vec<f64> = spec
            .chip
            .cores()
            .map(|c| if active.contains(&c) { per_core } else { 0.0 })
            .collect();
        let params = PdnParams {
            vdd: op.voltage,
            ..PdnParams::default()
        };
        let pdn = PdnModel::new(&spec.chip, &best.layout, &spec.rules, params).expect("pdn model");
        let sol = pdn.solve(&powers).expect("pdn solve");
        report.row(&[
            b.name().to_owned(),
            format!("{}", best.layout),
            fmt(best.total_power.value(), 0),
            fmt(sol.total_current(), 0),
            fmt(sol.max_droop() * 1e3, 1),
            fmt(sol.max_droop_fraction() * 100.0, 2),
            sol.meets_budget().to_string(),
        ]);
    }
    report.finish()?;
    println!();
    println!(
        "configurations over budget need PDN hardening (more C4/TSV area, \
         thicker RDL) — the engineering challenge of paper footnote 3"
    );
    Ok(())
}
