//! Ablation: how much does the Mintemp workload-allocation policy (adopted
//! by the paper from [20]) matter, compared to naive alternatives?
//!
//! For each policy and active-core count, all active cores run a
//! high-power benchmark at 1 GHz on the single chip; the table reports the
//! resulting peak temperature. Mintemp (outer rings, chessboard) should
//! dominate clustered and inner-first allocation at every partial
//! occupancy.

use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;
use tac25d_floorplan::raster::place_cores;
use tac25d_thermal::model::{PackageModel, ThermalConfig};

fn main() -> std::io::Result<()> {
    let spec = SystemSpec::fast();
    let profile = Benchmark::Cholesky.profile();
    let op = spec.vf.nominal();
    let policies = [
        ("mintemp", AllocationPolicy::Mintemp),
        ("checkerboard", AllocationPolicy::Checkerboard),
        ("clustered", AllocationPolicy::Clustered),
        ("inner_first", AllocationPolicy::InnerFirst),
    ];

    let layout = ChipletLayout::SingleChip;
    let model = PackageModel::new(
        &spec.chip,
        &layout,
        &spec.rules,
        &spec.stack_2d,
        ThermalConfig {
            grid: 32,
            ..spec.thermal.clone()
        },
    )
    .expect("model builds");
    let placed = place_cores(&spec.chip, &layout, &spec.rules).expect("core map");
    let per_core = spec.core_power.active_power(&profile, op, Celsius(75.0));

    let mut header = vec!["active_cores".to_owned()];
    header.extend(policies.iter().map(|(n, _)| (*n).to_owned()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut report = Report::new("allocation_ablation", &header_refs);

    for p in [32u16, 64, 96, 128, 160, 192, 224] {
        let mut row = vec![p.to_string()];
        for (_, policy) in policies {
            let sources: Vec<_> = active_cores(&spec.chip, p, policy)
                .into_iter()
                .map(|c| (placed[c.0 as usize].rect, per_core))
                .collect();
            let peak = model.solve(&sources).expect("solve").peak().value();
            row.push(fmt(peak, 1));
        }
        report.row(&row);
    }
    report.finish()?;
    Ok(())
}
