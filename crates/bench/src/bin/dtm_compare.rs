//! Extension experiment (paper Sec. II, refs [2]/[6]): dynamic thermal
//! management versus thermally-aware organization.
//!
//! The paper argues runtime mitigations (DVFS throttling, power budgeting)
//! "are not able to maximize the performance" — they react to heat instead
//! of removing it. Here the same hysteretic DVFS governor runs a hot
//! benchmark on the single chip and on thermally-aware 2.5D organizations:
//! the table shows how much of the nominal performance each package
//! retains, how often it throttles, and the peak it actually reaches.

use tac25d_bench::{fmt, Report};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;

fn main() -> std::io::Result<()> {
    let mut spec = SystemSpec::fast();
    spec.thermal.grid = 24;
    let policy = DtmPolicy::default();
    let duration = 120.0;

    let mut report = Report::new(
        "dtm_compare",
        &[
            "package",
            "benchmark",
            "retention_pct",
            "throttled_pct",
            "peak_c",
            "transitions",
        ],
    );
    let layouts: [(&str, ChipletLayout); 3] = [
        ("single_chip", ChipletLayout::SingleChip),
        ("4_chiplet_8mm", ChipletLayout::Symmetric4 { s3: Mm(8.0) }),
        (
            "16_chiplet_6mm",
            ChipletLayout::Uniform { r: 4, gap: Mm(6.0) },
        ),
    ];
    for b in [Benchmark::Cholesky, Benchmark::Shock] {
        for (name, layout) in &layouts {
            let r = simulate_dtm(&spec, layout, b, 256, &policy, duration).expect("dtm simulation");
            report.row(&[
                (*name).to_owned(),
                b.name().to_owned(),
                fmt(r.retention() * 100.0, 1),
                fmt(r.throttled_fraction * 100.0, 1),
                fmt(r.peak.value(), 1),
                r.transitions.to_string(),
            ]);
        }
    }
    report.finish()?;
    println!();
    println!(
        "the organization removes the heat the governor would otherwise fight: \
         wide 2.5D packages run the governor's nominal level continuously"
    );
    Ok(())
}
