//! Shared experiment plumbing: spec selection, benchmark filtering and a
//! small scoped-thread parallel map (the paper parallelized its sweeps over
//! 250 machines; we parallelize over cores).

use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;
use tac25d_obs as obs;

/// Picks the experiment spec: the paper configuration by default, the
/// coarse one under `--fast`.
pub fn spec_from_args() -> SystemSpec {
    // Every bench bin starts here, so this pins the obs epoch (and thus
    // `total_wall_s` in the profile) to the top of the run.
    obs::epoch();
    if crate::fast_flag() {
        let mut s = SystemSpec::fast();
        s.thermal.grid = 24;
        s.edge_step = Mm(2.0);
        s
    } else {
        // The optimizer-grade spec: 32×32 grid tracks the 64×64 peak
        // within a fraction of a degree at a quarter of the cost; figure
        // sweeps that want the full 64×64 grid override this.
        SystemSpec::fast()
    }
}

/// The optimizer seed selected by `--seed <n>` (42, the repo-wide pinned
/// default, otherwise). Golden traces are recorded under this default;
/// every randomized search in the bench binaries must draw its seed here
/// so one flag reproduces or perturbs a whole run.
///
/// # Panics
///
/// Panics if the value after `--seed` is not an unsigned integer.
pub fn seed_from_args() -> u64 {
    crate::arg_value("--seed").map_or(42, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--seed expects an unsigned integer, got {v:?}"))
    })
}

/// The benchmarks selected by `--benchmark <name>` (all eight otherwise).
///
/// # Panics
///
/// Panics with a helpful message if the filter names no known benchmark.
pub fn benchmarks_from_args() -> Vec<Benchmark> {
    match crate::benchmark_filter() {
        None => Benchmark::all().to_vec(),
        Some(name) => {
            let hit = Benchmark::all().into_iter().find(|b| b.name() == name);
            vec![hit.unwrap_or_else(|| {
                panic!(
                    "unknown benchmark {name:?}; expected one of {:?}",
                    Benchmark::all().map(|b| b.name())
                )
            })]
        }
    }
}

/// Applies `f` to every item on scoped worker threads, preserving input
/// order in the output. Items are dispatched in input order; see
/// [`parallel_map_by_cost`] when per-item run times vary widely.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_by_cost(items, |_| 0.0, f)
}

/// Like [`parallel_map`], but workers pull items in *descending estimated
/// cost* order so the longest-running items start first and no straggler
/// is left for last on an otherwise idle pool (classic LPT scheduling).
/// The output still preserves input order, and `f`'s results must not
/// depend on execution order — `cost` only shapes the schedule. `cost`
/// must be deterministic (ties fall back to input order), keeping the
/// dispatch order itself reproducible run to run.
///
/// Each worker writes its result into that item's own slot, so result
/// collection is lock-free (no shared `Mutex` on the hot path).
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_by_cost<T, R, F, C>(items: Vec<T>, cost: C, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
    C: Fn(&T) -> f64,
{
    let threads = obs::threads_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    });
    parallel_map_with_threads(items, threads, cost, f)
}

/// [`parallel_map_by_cost`] with an explicit worker count, bypassing both
/// `TAC25D_THREADS` and `available_parallelism`. Exists so tests can assert
/// the thread-count-independence contract directly (1-thread and N-thread
/// runs must produce identical output) without mutating the process
/// environment.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_with_threads<T, R, F, C>(items: Vec<T>, threads: usize, cost: C, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
    C: Fn(&T) -> f64,
{
    let _span = obs::span!("bench.parallel_map");
    let threads = threads.max(1).min(items.len().max(1));
    let costs: Vec<f64> = items.iter().map(&cost).collect();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let slots: Vec<std::sync::OnceLock<R>> =
        items.iter().map(|_| std::sync::OnceLock::new()).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let at = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if at >= order.len() {
                    break;
                }
                let i = order[at];
                let _item_span = obs::span!("bench.parallel_item");
                let r = f(&items[i]);
                if slots[i].set(r).is_err() {
                    panic!("slot {i} filled twice");
                }
            });
        }
    })
    .expect("worker thread panicked");
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.into_inner()
                .unwrap_or_else(|| panic!("worker left slot {i} empty"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_ok() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn cost_ordered_dispatch_preserves_output_order() {
        // Whatever the cost estimates (here: reversed, constant, NaN),
        // outputs must line up with inputs.
        let items: Vec<i32> = (0..64).collect();
        for cost in [
            (|&x: &i32| f64::from(x)) as fn(&i32) -> f64,
            |&x: &i32| -f64::from(x),
            |_: &i32| 1.0,
            |_: &i32| f64::NAN,
        ] {
            let out = parallel_map_by_cost(items.clone(), cost, |&x| x * 3);
            assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn default_benchmarks_are_all_eight() {
        assert_eq!(benchmarks_from_args().len(), 8);
    }

    #[test]
    fn one_thread_and_many_threads_are_byte_identical() {
        // The `TAC25D_THREADS` contract: worker count only trades wall
        // time for cores, never results. Render each item through a
        // float-accumulating closure and compare the *bytes* of the
        // formatted output across pool sizes.
        let items: Vec<u32> = (0..97).collect();
        let work = |&x: &u32| {
            let mut acc = 0.0_f64;
            for k in 1..=64 {
                acc += f64::from(x * k) / (f64::from(k) + 0.25);
            }
            format!("{x}:{acc}")
        };
        let cost = |&x: &u32| f64::from(x % 7);
        let single = parallel_map_with_threads(items.clone(), 1, cost, work);
        for threads in [2, 4, 8] {
            let pooled = parallel_map_with_threads(items.clone(), threads, cost, work);
            assert_eq!(
                single.join("\n").into_bytes(),
                pooled.join("\n").into_bytes(),
                "{threads}-thread output diverged from the 1-thread run"
            );
        }
    }
}
