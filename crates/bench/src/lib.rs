//! # tac25d-bench
//!
//! The experiment harness of the `tac25d` reproduction: one binary per
//! paper figure/table (see DESIGN.md §3 for the index) plus shared
//! reporting utilities. Each binary prints the paper's rows/series as an
//! aligned table on stdout and writes a CSV under `results/`.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p tac25d-bench --bin fig5
//! ```
//!
//! Most binaries accept `--fast` (coarser thermal grid / lattice, for smoke
//! runs) and `--benchmark <name>` filters where meaningful.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

pub mod fig8bench;
pub mod runner;
pub mod servebench;
pub mod sink;

use sink::RenderedReport;

/// A simple aligned-table + CSV reporter.
///
/// # Examples
///
/// ```no_run
/// use tac25d_bench::Report;
///
/// let mut r = Report::new("demo", &["x", "y"]);
/// r.row(&["1".into(), "2".into()]);
/// r.finish().unwrap();
/// ```
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report named `name` (also the CSV file stem) with the
    /// given column headers.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Report {
            name: name.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Emits the report through every default sink: the aligned stdout
    /// table, `results/<name>.csv`, the `TAC25D_TRACE` stdout block, and
    /// the obs profile/JSONL stream (see [`sink`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sinks.
    ///
    /// # Panics
    ///
    /// Panics if no sink produced an output path (the CSV sink always
    /// does).
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let rendered = RenderedReport {
            name: self.name,
            header: self.header,
            rows: self.rows,
        };
        let mut path = None;
        for s in sink::default_sinks() {
            if let Some(p) = s.emit(&rendered)? {
                path = Some(p);
            }
        }
        Ok(path.expect("CsvFileSink produces a path"))
    }
}

/// True when `TAC25D_TRACE=1`: [`Report::finish`] additionally emits the
/// raw CSV between `---BEGIN/END TRACE---` markers on stdout, so every
/// bench binary doubles as a machine-readable trace producer (the
/// golden-trace harness in `crates/verify` consumes these). The env var is
/// read once and cached.
pub fn trace_enabled() -> bool {
    static TRACE: OnceLock<bool> = OnceLock::new();
    *TRACE.get_or_init(|| std::env::var("TAC25D_TRACE").is_ok_and(|v| v == "1"))
}

/// Where the obs profile document goes: `BENCH_profile.json` inside
/// `TAC25D_RESULTS_DIR` when that redirect is set (keeping golden-harness
/// scratch runs isolated), otherwise at the workspace root where the perf
/// trajectory expects `BENCH_*.json` files.
pub fn profile_output_path() -> PathBuf {
    if let Ok(dir) = std::env::var("TAC25D_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir).join("BENCH_profile.json");
        }
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("BENCH_profile.json")
}

/// The running binary's file stem (`fig8`, `tab2`, …) for profile
/// labelling; `"unknown"` when the executable path is unavailable.
pub fn bin_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The stdout marker opening the trace block of report `name`.
pub fn trace_begin(name: &str) -> String {
    format!("---BEGIN TRACE {name}---")
}

/// The stdout marker closing the trace block of report `name`.
pub fn trace_end(name: &str) -> String {
    format!("---END TRACE {name}---")
}

/// Renders one CSV record, quoting cells that contain commas or quotes.
pub fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// The CSV output directory: `TAC25D_RESULTS_DIR` when set (the
/// golden-trace harness redirects runs into scratch directories this way),
/// otherwise `results/` at the workspace root (falling back to the current
/// directory when the workspace root cannot be located).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TAC25D_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("results")
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// True when `--fast` was passed on the command line.
pub fn fast_flag() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// The value following `--benchmark`, if any.
pub fn benchmark_filter() -> Option<String> {
    arg_value("--benchmark")
}

/// The value following a `--flag`, if any.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(-0.5, 0), "-0");
    }

    #[test]
    fn csv_line_quotes_only_when_needed() {
        let cells = [
            "plain".to_owned(),
            "a,b".to_owned(),
            "say \"hi\"".to_owned(),
        ];
        assert_eq!(csv_line(&cells), "plain,\"a,b\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn results_dir_is_workspace_relative() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut r = Report::new("x", &["a", "b"]);
        r.row(&["1".into()]);
    }
}
