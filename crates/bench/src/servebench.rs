//! The canonical serve-throughput record: `BENCH_serve.json`.
//!
//! Every `loadgen` run appends one entry comparing the naive
//! one-cold-engine-per-request baseline against the warm daemon's
//! steady-state throughput, so the file accumulates an amortization
//! trajectory across serve-layer changes instead of silently overwriting
//! history. The document is re-rendered from parsed known fields on each
//! append — unknown fields are dropped rather than preserved, keeping the
//! schema authoritative:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bin": "loadgen",
//!   "entries": [
//!     {
//!       "clients": 8,
//!       "requests": 512,
//!       "naive_rps": 1.9,
//!       "served_rps": 120.4,
//!       "speedup": 63.4,
//!       "p50_us": 310,
//!       "p99_us": 1840,
//!       "evaluate_p50_us": 255,
//!       "evaluate_p99_us": 1023,
//!       "cache_hits": 508,
//!       "singleflight_joins": 3,
//!       "date": "2026-08-09",
//!       "git_rev": "abc1234",
//!       "host": "Intel(R) Xeon(R) Processor @ 2.10GHz (8 threads)"
//!     }
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use tac25d_obs as obs;

use crate::fig8bench::{git_rev, host_string, utc_date};

/// One recorded `loadgen` run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEntry {
    /// Concurrent keep-alive clients in the served phase.
    pub clients: u64,
    /// Requests completed in the served phase.
    pub requests: u64,
    /// Naive baseline throughput: fresh cold engine per request,
    /// sequential (one-process-per-request semantics).
    pub naive_rps: f64,
    /// Steady-state daemon throughput over the shared warm caches.
    pub served_rps: f64,
    /// `served_rps / naive_rps` — the cross-request amortization factor.
    pub speedup: f64,
    /// Median served request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile served request latency, microseconds.
    pub p99_us: u64,
    /// Server-side median handle time for successful `/v1/evaluate`
    /// requests (`serve.evaluate.2xx_handle_us` log2-quantized quantile
    /// upper bound), excluding queue wait and client transport. `0` in
    /// entries recorded before the per-endpoint split existed.
    pub evaluate_p50_us: u64,
    /// Server-side p99 handle time for successful `/v1/evaluate`
    /// requests, same source and caveats as `evaluate_p50_us`.
    pub evaluate_p99_us: u64,
    /// `evaluator.cache_hits` observed by the daemon during the run.
    pub cache_hits: u64,
    /// `evaluator.singleflight_joins` observed during the run.
    pub singleflight_joins: u64,
    /// Civil date of the run (UTC, `YYYY-MM-DD`).
    pub date: String,
    /// Short git revision, `unknown` outside a work tree.
    pub git_rev: String,
    /// CPU model and logical core count of the machine that ran the
    /// bench — throughputs across entries are only comparable when this
    /// matches. Empty in entries recorded before the field existed.
    pub host: String,
}

/// Where the record goes: `BENCH_serve.json` inside `TAC25D_RESULTS_DIR`
/// when that redirect is set (CI and scratch runs must not touch the
/// canonical file), otherwise at the workspace root next to
/// `BENCH_fig8.json`.
pub fn serve_bench_output_path() -> PathBuf {
    if let Ok(dir) = std::env::var("TAC25D_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir).join("BENCH_serve.json");
        }
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("BENCH_serve.json")
}

/// Stamps `entry` with today's date, the current git revision and the
/// host description.
pub fn stamp(mut entry: ServeEntry) -> ServeEntry {
    entry.date = utc_date();
    entry.git_rev = git_rev();
    entry.host = host_string();
    entry
}

/// Appends `entry` to the record at `path`, preserving existing entries.
///
/// # Errors
///
/// Returns any I/O error; a present-but-unparsable document is an error
/// too (the canonical record must never be silently discarded).
pub fn append_entry(path: &Path, entry: &ServeEntry) -> io::Result<()> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => {
            parse_entries(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    entries.push(entry.clone());
    std::fs::write(path, render(&entries))
}

fn parse_entries(text: &str) -> Result<Vec<ServeEntry>, String> {
    let doc = obs::json::parse(text).map_err(|e| format!("BENCH_serve.json: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_array())
        .ok_or("BENCH_serve.json: missing entries array")?;
    entries
        .iter()
        .map(|e| {
            let str_field = |k: &str| {
                e.get(k)
                    .and_then(|v| v.as_str())
                    .map(str::to_owned)
                    .ok_or_else(|| format!("BENCH_serve.json: entry missing {k}"))
            };
            let num_field = |k: &str| {
                e.get(k)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("BENCH_serve.json: entry missing {k}"))
            };
            Ok(ServeEntry {
                clients: num_field("clients")? as u64,
                requests: num_field("requests")? as u64,
                naive_rps: num_field("naive_rps")?,
                served_rps: num_field("served_rps")?,
                speedup: num_field("speedup")?,
                p50_us: num_field("p50_us")? as u64,
                p99_us: num_field("p99_us")? as u64,
                // Absent in pre-split entries; 0 means "not recorded".
                evaluate_p50_us: num_field("evaluate_p50_us").unwrap_or(0.0) as u64,
                evaluate_p99_us: num_field("evaluate_p99_us").unwrap_or(0.0) as u64,
                cache_hits: num_field("cache_hits")? as u64,
                singleflight_joins: num_field("singleflight_joins")? as u64,
                date: str_field("date")?,
                git_rev: str_field("git_rev")?,
                // Absent in pre-host entries; "" means "not recorded".
                host: str_field("host").unwrap_or_default(),
            })
        })
        .collect()
}

fn render(entries: &[ServeEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"bin\": \"loadgen\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"clients\": {}, \"requests\": {}, \"naive_rps\": {:.3}, \
             \"served_rps\": {:.3}, \"speedup\": {:.2}, \"p50_us\": {}, \"p99_us\": {}, \
             \"evaluate_p50_us\": {}, \"evaluate_p99_us\": {}, \
             \"cache_hits\": {}, \"singleflight_joins\": {}, \"date\": \"{}\", \
             \"git_rev\": \"{}\", \"host\": \"{}\"}}",
            e.clients,
            e.requests,
            e.naive_rps,
            e.served_rps,
            e.speedup,
            e.p50_us,
            e.p99_us,
            e.evaluate_p50_us,
            e.evaluate_p99_us,
            e.cache_hits,
            e.singleflight_joins,
            obs::json::escape(&e.date),
            obs::json::escape(&e.git_rev),
            obs::json::escape(&e.host),
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Latency percentile from sorted microsecond samples (nearest-rank).
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(clients: u64, speedup: f64) -> ServeEntry {
        ServeEntry {
            clients,
            requests: 512,
            naive_rps: 2.0,
            served_rps: 2.0 * speedup,
            speedup,
            p50_us: 310,
            p99_us: 1840,
            evaluate_p50_us: 255,
            evaluate_p99_us: 1023,
            cache_hits: 500,
            singleflight_joins: 3,
            date: "2026-08-09".to_owned(),
            git_rev: "abc1234".to_owned(),
            host: "Test CPU (4 threads)".to_owned(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let entries = vec![entry(8, 12.5), entry(1, 6.0)];
        let parsed = parse_entries(&render(&entries)).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn append_accumulates_history() {
        let dir = std::env::temp_dir().join("tac25d_servebench_append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        let _ = std::fs::remove_file(&path);
        append_entry(&path, &entry(8, 10.0)).unwrap();
        append_entry(&path, &entry(4, 7.0)).unwrap();
        let parsed = parse_entries(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].clients, 8);
        assert_eq!(parsed[1].clients, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unparsable_record_is_an_error_not_a_wipe() {
        let dir = std::env::temp_dir().join("tac25d_servebench_guard");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = append_entry(&path, &entry(8, 10.0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The corrupt document is untouched.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "not json at all");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entries_without_endpoint_percentiles_parse_as_zero() {
        // Records written before the per-endpoint split must keep
        // parsing; the new fields default to 0 ("not recorded").
        let legacy = r#"{
          "schema_version": 1, "bin": "loadgen",
          "entries": [
            {"clients": 8, "requests": 512, "naive_rps": 2.0,
             "served_rps": 20.0, "speedup": 10.0, "p50_us": 310,
             "p99_us": 1840, "cache_hits": 500, "singleflight_joins": 3,
             "date": "2026-08-09", "git_rev": "abc1234"}
          ]
        }"#;
        let parsed = parse_entries(legacy).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].evaluate_p50_us, 0);
        assert_eq!(parsed[0].evaluate_p99_us, 0);
        assert_eq!(parsed[0].host, "");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 50.0), 50);
        assert_eq!(percentile_us(&sorted, 99.0), 99);
        assert_eq!(percentile_us(&sorted, 100.0), 100);
        assert_eq!(percentile_us(&[42], 50.0), 42);
        assert_eq!(percentile_us(&[], 99.0), 0);
    }
}
