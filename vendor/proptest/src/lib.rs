//! Offline stand-in for `proptest` (the API subset the workspace uses).
//!
//! The build environment cannot reach a crates.io registry, so this shim
//! re-implements the pieces of proptest the test suites rely on:
//!
//! * the `proptest! {}` macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! * range strategies over integers and floats,
//! * `prop::sample::select`, `prop::collection::vec`, tuple strategies,
//! * the [`strategy::Strategy`] trait (so `impl Strategy<Value = T>`
//!   helper functions keep working).
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs unshrunk), and generation is driven by the workspace's vendored
//! xoshiro `StdRng` seeded from the test's name — deterministic across
//! runs, so failures are reproducible.

/// Errors a property body can raise (via the `prop_*` macros).
pub mod test_runner {
    /// Outcome of one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the runner draws new ones.
        Reject(String),
        /// `prop_assert!`-style failure; the runner panics with the message.
        Fail(String),
    }

    /// Runner configuration (`cases` is the only knob the workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the full workspace suite
            // fast while still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategies: how values are drawn for property inputs.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Uniform choice from a fixed list (`prop::sample::select`).
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Select<T> {
        /// Builds a select strategy over `items` (must be non-empty).
        pub fn new(items: Vec<T>) -> Self {
            assert!(!items.is_empty(), "select over an empty list");
            Select { items }
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = (rng.next_u64() % self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }

    /// `Vec` of values from an element strategy (`prop::collection::vec`).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> VecStrategy<S> {
        /// Builds vectors whose lengths are drawn uniformly from `size`.
        pub fn new(element: S, size: Range<usize>) -> Self {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len: usize = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::sample::select`, `prop::collection::vec`).
pub mod prop {
    /// Choice strategies.
    pub mod sample {
        use crate::strategy::Select;

        /// Uniformly selects one of `items` per case.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select::new(items)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy::new(element, size)
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the
    /// test's name so each property gets its own reproducible stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests; see module docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::__rt::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).max(4096),
                            "proptest: too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed in {}: {}", stringify!($name), msg);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a property body; failure reports the generated inputs'
/// consequence instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current inputs; the runner draws a fresh case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn any_small() -> impl Strategy<Value = u8> {
        prop::sample::select(vec![1u8, 2, 3])
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..40, y in 0.0..12.0f64, z in 1u16..=256) {
            prop_assert!((3..40).contains(&x));
            prop_assert!((0.0..12.0).contains(&y));
            prop_assert!((1..=256).contains(&z));
        }

        #[test]
        fn select_and_assume_work(v in any_small(), w in 0u32..10) {
            prop_assume!(w != 0);
            prop_assert!((1..=3).contains(&v));
            prop_assert_eq!(w.min(9), w);
        }

        #[test]
        fn vec_of_tuples(xs in prop::collection::vec((0.0..14.0f64, 0.5..4.0f64), 1..5)) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            for (a, b) in xs {
                prop_assert!((0.0..14.0).contains(&a));
                prop_assert!((0.5..4.0).contains(&b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn configured_case_count_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
