//! No-op derive macros backing the offline `serde` shim.
//!
//! `#[derive(Serialize, Deserialize)]` must resolve for the workspace's
//! data types, but nothing serializes through the traits yet — the shim
//! traits in `serde` are blanket-implemented, so the derives here simply
//! expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the shim's `Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the shim's `Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
