//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no route to a crates.io registry, so the
//! workspace vendors the handful of `rand` items it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64: fast,
//! well-distributed and fully deterministic for a fixed seed. Its stream
//! differs from upstream `rand`'s ChaCha12-based `StdRng`; nothing in the
//! workspace depends on the exact stream, only on seed-determinism.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from all 2^64 bit patterns (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`).
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-1..=1);
            assert!((-1..=1).contains(&v));
            let u: u16 = rng.gen_range(3..9);
            assert!((3..9).contains(&u));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: i64 = rng.gen_range(-1..=1);
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}
