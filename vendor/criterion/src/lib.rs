//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace's benches link against this shim: same surface
//! (`Criterion`, `benchmark_group`, `Bencher::iter*`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`), but measurement is a plain
//! mean-of-samples wall-clock timer with no warm-up modeling, outlier
//! rejection or HTML reports. Good enough to compare orders of
//! magnitude; swap the real criterion back in for publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named benchmark group with its own sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Display,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Display,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report already printed per-benchmark).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark (`"name/param"`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new<N: Display, P: Display>(name: N, param: P) -> Self {
        BenchmarkId {
            full: format!("{name}/{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine(setup())`, excluding the setup from the measurement.
    pub fn iter_with_setup<S, O, Setup, Routine>(&mut self, mut setup: Setup, mut routine: Routine)
    where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Alias of [`Bencher::iter_with_setup`] (upstream's batched variant).
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        setup: Setup,
        routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        self.iter_with_setup(setup, routine);
    }
}

/// Batch sizing hint (ignored by the shim's timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // One untimed warm-up pass, then the recorded samples.
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iters == 0 {
        println!("{id}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
    println!(
        "{id}: {per_iter} ns/iter (mean of {} iters, shim timer)",
        b.iters
    );
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter_with_setup(|| 5, |x| x * 2));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| b.iter(|| p + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_function_runs_all_targets() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("grid", 32).to_string(), "grid/32");
    }
}
