//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn`,
//! which std has provided natively since 1.63 as `std::thread::scope`.
//! This shim adapts the std API to crossbeam's signatures (the spawned
//! closure receives the scope again, and `scope` returns a `Result`).
//!
//! One behavioral difference: on a panicking child thread, crossbeam's
//! `scope` returns `Err` while `std::thread::scope` re-panics. Every call
//! site in the workspace immediately `.expect()`s the result, so the
//! observable behavior (propagate the panic) is identical.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A spawn scope handed to [`scope`]'s closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Upstream crossbeam reports child panics as `Err`; this shim
    /// propagates them as panics (see module docs), so `Ok` is the only
    /// value actually returned.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn spawn_returns_joinable_handle() {
        let out = super::thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().expect("child")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
