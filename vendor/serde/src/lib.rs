//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! future wire formats but never (yet) serializes through them, and the
//! build environment cannot reach a crates.io registry. This shim keeps
//! the derive attributes compiling: the traits are universal markers and
//! the derive macros (in the companion `serde_derive` shim) expand to
//! nothing. Swapping the real serde back in is a one-line Cargo change.

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
