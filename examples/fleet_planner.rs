//! Fleet capacity planning: a realistic downstream scenario.
//!
//! A datacenter operator deploys 10,000 sockets running a known mix of
//! workloads and must pick ONE manufactured design. This example combines
//! the multi-application optimizer with the cost model to compare three
//! procurement options:
//!
//! 1. the conventional single chip (baseline);
//! 2. the cheapest 2.5D design matching baseline performance;
//! 3. the fastest 2.5D design at baseline cost.
//!
//! ```text
//! cargo run --release -p tac25d-bench --example fleet_planner
//! ```

use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;

const SOCKETS: f64 = 10_000.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = SystemSpec::fast();
    spec.edge_step = Mm(2.0);
    let ev = Evaluator::new(spec);
    // The fleet mix: mostly memory-bound service traffic, some solvers.
    let apps = [
        Benchmark::Canneal,
        Benchmark::Streamcluster,
        Benchmark::Hpccg,
    ];
    let usage = [0.5, 0.3, 0.2];

    // Baseline fleet: single chips.
    let mut base_cost = 0.0;
    let mut base_ips = 0.0;
    for (&b, &u) in apps.iter().zip(&usage) {
        let bl = single_chip_baseline(&ev, b)?.expect("baseline exists");
        base_cost = bl.cost; // identical across benchmarks
        base_ips += u * bl.ips.0;
    }
    println!("fleet mix: canneal 50% / streamcluster 30% / hpccg 20%");
    println!(
        "baseline  : single chip, ${base_cost:.0}/socket, {:.0} effective GIPS/socket",
        base_ips / 1e9
    );
    println!(
        "            fleet: ${:.2}M silicon, {:.1} effective TIPS",
        SOCKETS * base_cost / 1e6,
        SOCKETS * base_ips / 1e12
    );
    println!();

    // Option A: iso-performance, minimum cost.
    let shared = optimize_multi_app(
        &ev,
        &apps,
        &MultiAppPolicy::WeightedAverage(usage.to_vec()),
        Weights::cost_only(),
        &OptimizerConfig::default(),
    )?
    .expect("a shared cost-optimal design exists");
    let cost_a = shared.per_app[0].candidate.cost;
    let ips_a: f64 = apps
        .iter()
        .zip(&usage)
        .zip(&shared.per_app)
        .map(|((_, &u), org)| u * org.candidate.ips.0)
        .sum();
    println!(
        "option A  : {} on {:.0} mm interposer (cheapest at ~baseline perf)",
        shared.count, shared.edge_mm
    );
    println!(
        "            ${cost_a:.0}/socket ({:+.0}%), {:.0} GIPS ({:+.0}%)",
        (cost_a / base_cost - 1.0) * 100.0,
        ips_a / 1e9,
        (ips_a / base_ips - 1.0) * 100.0
    );
    println!(
        "            fleet saves ${:.2}M of silicon",
        SOCKETS * (base_cost - cost_a) / 1e6
    );
    println!();

    // Option B: iso-cost, maximum performance.
    let fast = optimize_multi_app(
        &ev,
        &apps,
        &MultiAppPolicy::WeightedAverage(usage.to_vec()),
        Weights::performance_only(),
        &OptimizerConfig::default(),
    )?
    .expect("a shared perf-optimal design exists");
    let cost_b = fast.per_app[0].candidate.cost;
    let ips_b: f64 = apps
        .iter()
        .zip(&usage)
        .zip(&fast.per_app)
        .map(|((_, &u), org)| u * org.candidate.ips.0)
        .sum();
    println!(
        "option B  : {} on {:.0} mm interposer (fastest shared design)",
        fast.count, fast.edge_mm
    );
    println!(
        "            ${cost_b:.0}/socket ({:+.0}%), {:.0} GIPS ({:+.0}%)",
        (cost_b / base_cost - 1.0) * 100.0,
        ips_b / 1e9,
        (ips_b / base_ips - 1.0) * 100.0
    );
    println!(
        "            equivalent to {:+.0} baseline sockets of capacity",
        SOCKETS * (ips_b / base_ips - 1.0)
    );
    Ok(())
}
