//! Quickstart: evaluate one thermally-aware 2.5D organization end to end.
//!
//! Builds the paper's 256-core system as 16 chiplets with non-uniform
//! spacing, runs the coupled power/thermal loop for one benchmark at the
//! nominal operating point, and compares peak temperature and manufacturing
//! cost against the single-chip baseline.
//!
//! ```text
//! cargo run --release -p tac25d-bench --example quickstart
//! ```

use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::{ChipletLayout, Spacing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ev = Evaluator::new(SystemSpec::fast());
    let spec = ev.spec();
    let benchmark = Benchmark::Cholesky;
    let op = spec.vf.nominal();

    // A 16-chiplet organization: outer-ring gaps 6 mm, centre chiplets
    // pulled 3 mm from the centre lines, middle gap 6 mm.
    let layout = ChipletLayout::Symmetric16 {
        spacing: Spacing::new(6.0, 3.0, 6.0),
    };
    layout.validate(&spec.chip, &spec.rules)?;
    let edge = layout
        .interposer_edge(&spec.chip, &spec.rules)
        .expect("16-chiplet systems have an interposer");

    let e25 = ev.evaluate(&layout, benchmark, op, 256)?;
    let e2d = ev.evaluate(&ChipletLayout::SingleChip, benchmark, op, 256)?;

    let cost_2d = spec.cost.single_chip_cost(spec.chip.area().value());
    let wc = spec.chip.edge().value() / 4.0;
    let cost_25 = spec
        .cost
        .assembly_cost(16, wc * wc, edge.value() * edge.value())
        .total();

    println!("benchmark            : {benchmark} at {op}, 256 active cores");
    println!("layout               : {layout}");
    println!("interposer edge      : {edge}");
    println!();
    println!(
        "single chip peak     : {:>7.1}°C  (threshold {})",
        e2d.peak.value(),
        spec.threshold
    );
    println!("2.5D system peak     : {:>7.1}°C", e25.peak.value());
    println!("single chip power    : {:>7.1} W", e2d.total_power.value());
    println!(
        "2.5D system power    : {:>7.1} W (incl. {:.1} W NoC)",
        e25.total_power.value(),
        e25.noc_power.value()
    );
    println!("single chip cost     : {cost_2d:>7.1} $");
    println!(
        "2.5D system cost     : {cost_25:>7.1} $  ({:+.0}%)",
        (cost_25 / cost_2d - 1.0) * 100.0
    );
    println!();
    if e25.feasible(spec.threshold) && !e2d.feasible(spec.threshold) {
        println!(
            "=> the 2.5D organization reclaims dark silicon: it runs all 256 cores at {} \
             under {} where the single chip cannot.",
            op, spec.threshold
        );
    }
    Ok(())
}
