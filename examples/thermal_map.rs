//! Render the steady-state die temperature field of a chiplet organization
//! as an ASCII heat map — handy for eyeballing how spacing moves hotspots.
//!
//! ```text
//! cargo run --release -p tac25d-bench --example thermal_map -- [--benchmark shock]
//! ```

use tac25d_bench::runner::{benchmarks_from_args, spec_from_args};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::{ChipletLayout, Mm, Spacing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ev = Evaluator::new(spec_from_args());
    let spec = ev.spec();
    let op = spec.vf.nominal();
    let benchmark = benchmarks_from_args()[0];

    for (label, layout) in [
        ("single chip", ChipletLayout::SingleChip),
        (
            "16 chiplets, tight (1 mm uniform)",
            ChipletLayout::Uniform { r: 4, gap: Mm(1.0) },
        ),
        (
            "16 chiplets, thermally aware (s1=4, s2=2.5, s3=5)",
            ChipletLayout::Symmetric16 {
                spacing: Spacing::new(4.0, 2.5, 5.0),
            },
        ),
    ] {
        let e = ev.evaluate(&layout, benchmark, op, 256)?;
        println!(
            "\n{label} — {benchmark} @ {op}: peak {:.1}°C",
            e.peak.value()
        );
        draw(&ev, &layout, benchmark, op)?;
    }
    Ok(())
}

fn draw(
    ev: &Evaluator,
    layout: &ChipletLayout,
    benchmark: Benchmark,
    op: tac25d_power::dvfs::OperatingPoint,
) -> Result<(), Box<dyn std::error::Error>> {
    // Re-solve to get the full temperature grid (evaluations only keep the
    // summary; the model cache makes this cheap).
    use tac25d_floorplan::raster::place_cores;
    use tac25d_thermal::model::{PackageModel, ThermalConfig};

    let spec = ev.spec();
    let stack = if layout.is_single_chip() {
        &spec.stack_2d
    } else {
        &spec.stack_25d
    };
    let cfg = ThermalConfig {
        grid: 48,
        ..spec.thermal.clone()
    };
    let model = PackageModel::new(&spec.chip, layout, &spec.rules, stack, cfg)?;
    let placed = place_cores(&spec.chip, layout, &spec.rules)?;
    let profile = benchmark.profile();
    let sources: Vec<_> = placed
        .iter()
        .map(|pc| {
            (
                pc.rect,
                spec.core_power
                    .active_power(&profile, op, tac25d_floorplan::units::Celsius(80.0)),
            )
        })
        .collect();
    let sol = model.solve(&sources)?;
    let grid = sol.die_grid();
    let (lo, hi) = (spec.thermal.ambient.value(), sol.peak().value());
    let ramp: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for iy in (0..grid.ny()).rev().step_by(2) {
        let mut line = String::new();
        for ix in 0..grid.nx() {
            let t = grid.get(ix, iy);
            let norm = ((t - lo) / (hi - lo + 1e-9)).clamp(0.0, 0.999);
            line.push(ramp[(norm * ramp.len() as f64) as usize]);
        }
        println!("  |{line}|");
    }
    println!("  scale: ' '={lo:.0}°C … '@'={hi:.1}°C");
    Ok(())
}
