//! Spacing sweep (Fig. 5 style): peak temperature of a benchmark versus
//! uniform chiplet spacing, for 4- and 16-chiplet organizations, with all
//! 256 cores active at 1 GHz.
//!
//! ```text
//! cargo run --release -p tac25d-bench --example spacing_sweep -- [--benchmark shock]
//! ```

use tac25d_bench::runner::{benchmarks_from_args, spec_from_args};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::{ChipletLayout, Mm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ev = Evaluator::new(spec_from_args());
    let spec = ev.spec();
    let op = spec.vf.nominal();
    let benchmark = benchmarks_from_args()[0];

    println!("peak temperature vs uniform spacing — {benchmark}, 256 cores @ {op}");
    println!(
        "{:>10}  {:>12}  {:>12}",
        "spacing", "4-chiplet", "16-chiplet"
    );
    for half_mm in 0..=20 {
        let gap = Mm(0.5 * f64::from(half_mm));
        let mut cells = vec![format!("{:>8.1}mm", gap.value())];
        for r in [2u16, 4] {
            let layout = ChipletLayout::Uniform { r, gap };
            // Skip spacings that push the interposer past the 50 mm cap.
            if layout
                .interposer_edge(&spec.chip, &spec.rules)
                .is_some_and(|e| e.value() > spec.rules.max_interposer.value())
            {
                cells.push(format!("{:>12}", "-"));
                continue;
            }
            let e = ev.evaluate(&layout, benchmark, op, 256)?;
            let mark = if e.feasible(spec.threshold) { " " } else { "*" };
            cells.push(format!("{:>10.1}°C{mark}", e.peak.value()));
        }
        println!("{}", cells.join("  "));
    }
    println!("(* = above the {} threshold)", spec.threshold);
    Ok(())
}
