//! Cost-model explorer (Fig. 3(a) style): normalized 2.5D system cost
//! versus interposer size, across defect densities and chiplet counts —
//! pure cost model, no thermal simulation.
//!
//! ```text
//! cargo run --release -p tac25d-bench --example cost_explorer
//! ```

use tac25d_cost::CostParams;

fn main() {
    let chip_area = 324.0; // 18 mm × 18 mm
    println!("2.5D system cost normalized to the 18x18mm single chip");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>14}  {:>14}",
        "edge", "D0=0.25 n=4", "D0=0.25 n=16", "D0=0.30 n=4", "D0=0.30 n=16"
    );
    for edge in (20..=50).step_by(5) {
        let edge = f64::from(edge);
        let mut cells = vec![format!("{edge:>6.0}mm")];
        for d0 in [0.25, 0.30] {
            let params = CostParams::paper().with_defect_density(d0);
            let c2d = params.single_chip_cost(chip_area);
            for n in [4u32, 16] {
                let chiplet_area = chip_area / f64::from(n);
                let c = params.assembly_cost(n, chiplet_area, edge * edge).total();
                cells.push(format!("{:>14.3}", c / c2d));
            }
        }
        // Reorder: n=4/n=16 within each D0 (cells pushed D0-major already).
        println!(
            "{}  {}  {}  {}  {}",
            cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
    println!();
    let params = CostParams::paper();
    let c2d = params.single_chip_cost(chip_area);
    let min16 = params.assembly_cost(16, chip_area / 16.0, 400.0).total();
    println!(
        "minimum-interposer 16-chiplet saving: {:.0}% (paper: 36%)",
        (1.0 - min16 / c2d) * 100.0
    );
}
