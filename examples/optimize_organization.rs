//! Run the paper's multi-start greedy optimizer for one benchmark and print
//! the chosen chiplet organization, Fig. 8 style — including an ASCII
//! rendering of the placement and the Mintemp workload allocation.
//!
//! ```text
//! cargo run --release -p tac25d-bench --example optimize_organization -- \
//!     [--benchmark hpccg] [--fast]
//! ```

use tac25d_bench::runner::{benchmarks_from_args, spec_from_args};
use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;
use tac25d_floorplan::raster::place_cores;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ev = Evaluator::new(spec_from_args());
    let benchmark = benchmarks_from_args()[0];

    println!(
        "optimizing {benchmark} (α=1, β=0, threshold {}) ...",
        ev.spec().threshold
    );
    let result = optimize(&ev, benchmark, &OptimizerConfig::default())?;
    let baseline = &result.baseline;
    println!();
    println!(
        "single-chip baseline : {} with {} cores -> {} (peak {:.1}°C, ${:.0})",
        baseline.op,
        baseline.active_cores,
        baseline.ips,
        baseline.peak.value(),
        baseline.cost
    );
    match &result.best {
        None => println!("no feasible 2.5D organization under the threshold"),
        Some(best) => {
            println!(
                "optimal organization : {} at {} with {} cores",
                best.layout, best.candidate.op, best.candidate.active_cores
            );
            println!(
                "                       interposer {}, peak {:.1}°C, ${:.0}",
                best.candidate.edge,
                best.peak.value(),
                best.candidate.cost
            );
            println!(
                "performance          : {} ({:+.0}% vs baseline)",
                best.candidate.ips,
                (best.normalized_perf - 1.0) * 100.0
            );
            println!(
                "cost                 : {:+.0}% vs baseline",
                (best.normalized_cost - 1.0) * 100.0
            );
            println!(
                "search               : {} candidates, {} tried, {} thermal sims",
                result.stats.candidates_total,
                result.stats.candidates_tried,
                result.stats.thermal_sims
            );
            println!();
            draw_layout(&ev, &best.layout, best.candidate.active_cores);
        }
    }
    Ok(())
}

/// Renders the interposer floorplan: '#' = active core tile, '.' = dark
/// core tile, ' ' = interposer.
fn draw_layout(ev: &Evaluator, layout: &ChipletLayout, p: u16) {
    let spec = ev.spec();
    let cols = 64usize;
    let edge = layout.footprint_edge(&spec.chip, &spec.rules).value();
    let scale = cols as f64 / edge;
    let rows = cols / 2; // terminal cells are ~2x taller than wide
    let mut canvas = vec![vec![' '; cols]; rows];
    let placed = place_cores(&spec.chip, layout, &spec.rules).expect("core-accurate layout");
    let active: std::collections::HashSet<_> =
        mintemp_active_cores(&spec.chip, p).into_iter().collect();
    for pc in &placed {
        let c = pc.rect.center();
        let x = ((c.x.value() * scale) as usize).min(cols - 1);
        let y = ((c.y.value() * scale / 2.0) as usize).min(rows - 1);
        let glyph = if active.contains(&pc.core) { '#' } else { '.' };
        canvas[rows - 1 - y][x] = glyph;
    }
    println!(
        "placement ('#' active, '.' dark, {}mm x {0}mm interposer):",
        edge
    );
    for row in canvas {
        println!("  |{}|", row.into_iter().collect::<String>());
    }
}
