//! Multi-application chiplet organization (paper Sec. IV): pick ONE
//! manufactured design that serves a whole workload mix, under the
//! worst-case, average and weighted-average policies.
//!
//! ```text
//! cargo run --release -p tac25d-bench --example multi_app
//! ```

use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = SystemSpec::fast();
    spec.edge_step = Mm(2.0);
    let ev = Evaluator::new(spec);
    // A mixed deployment: mostly canneal-like service traffic with
    // periodic cholesky-like batch jobs and hpccg-like solvers.
    let apps = [Benchmark::Canneal, Benchmark::Hpccg, Benchmark::Cholesky];
    let usage = vec![0.6, 0.3, 0.1];

    for (name, policy) in [
        ("worst-case", MultiAppPolicy::WorstCase),
        ("average", MultiAppPolicy::Average),
        (
            "weighted (60/30/10)",
            MultiAppPolicy::WeightedAverage(usage),
        ),
    ] {
        println!("policy: {name}");
        match optimize_multi_app(
            &ev,
            &apps,
            &policy,
            Weights::balanced(),
            &OptimizerConfig::default(),
        )? {
            None => println!("  no shared design is feasible"),
            Some(r) => {
                println!(
                    "  shared design: {} on a {:.0} mm interposer (objective {:.3})",
                    r.count, r.edge_mm, r.objective
                );
                for (b, org) in apps.iter().zip(&r.per_app) {
                    println!(
                        "    {:<14} {} x{:<3} -> {:+.0}% perf, peak {:.1}°C",
                        b.name(),
                        org.candidate.op,
                        org.candidate.active_cores,
                        (org.normalized_perf - 1.0) * 100.0,
                        org.peak.value()
                    );
                }
            }
        }
        println!();
    }
    Ok(())
}
