//! Cross-crate integration tests: the full organization → floorplan →
//! power/NoC → thermal → optimizer pipeline, on a coarse grid for speed.

use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;
use tac25d_floorplan::units::Celsius;

fn evaluator() -> Evaluator {
    let mut spec = SystemSpec::fast();
    spec.thermal.grid = 16;
    spec.edge_step = Mm(2.0);
    Evaluator::new(spec)
}

#[test]
fn full_pipeline_single_evaluation() {
    let ev = evaluator();
    let layout = ChipletLayout::Symmetric16 {
        spacing: Spacing::new(3.0, 1.5, 4.0),
    };
    let e = ev
        .evaluate(&layout, Benchmark::Hpccg, ev.spec().vf.nominal(), 256)
        .expect("evaluation succeeds");
    assert!(e.converged);
    assert!(e.peak.value() > ev.spec().thermal.ambient.value());
    assert!(
        e.total_power.value() > 200.0,
        "256 hpccg cores dissipate >200 W"
    );
    assert!(e.noc_power.value() > 0.5 && e.noc_power.value() < 15.0);
    assert!(e.ips.gips() > 0.0);
}

#[test]
fn thermally_aware_spacing_beats_tight_packing() {
    // The core thesis: same silicon, same power — spreading chiplets
    // lowers peak temperature, enabling higher (f, p) under a threshold.
    let ev = evaluator();
    let op = ev.spec().vf.nominal();
    let tight = ev
        .evaluate(
            &ChipletLayout::Uniform { r: 4, gap: Mm(0.5) },
            Benchmark::Cholesky,
            op,
            256,
        )
        .unwrap();
    let spread = ev
        .evaluate(
            &ChipletLayout::Uniform { r: 4, gap: Mm(8.0) },
            Benchmark::Cholesky,
            op,
            256,
        )
        .unwrap();
    assert!(
        spread.peak.value() < tight.peak.value() - 15.0,
        "spreading must cool substantially: {} vs {}",
        spread.peak,
        tight.peak
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn optimizer_output_is_self_consistent() {
    let ev = evaluator();
    let result = optimize(&ev, Benchmark::Hpccg, &OptimizerConfig::default()).unwrap();
    let best = result.best.expect("hpccg has a solution");
    // The reported organization re-evaluates to the same feasible state.
    let e = ev
        .evaluate(
            &best.layout,
            Benchmark::Hpccg,
            best.candidate.op,
            best.candidate.active_cores,
        )
        .unwrap();
    assert!(e.feasible(ev.spec().threshold));
    assert!((e.peak.value() - best.peak.value()).abs() < 1e-9);
    // Normalizations agree with the baseline.
    assert!((best.normalized_perf - best.candidate.ips.0 / result.baseline.ips.0).abs() < 1e-12);
    // The layout's interposer edge matches the candidate's.
    let edge = best
        .layout
        .interposer_edge(&ev.spec().chip, &ev.spec().rules)
        .expect("2.5D layout");
    assert!((edge.value() - best.candidate.edge.value()).abs() < 1e-9);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn optimizer_respects_candidate_filters() {
    let ev = evaluator();
    let iso_cost = optimize_with_filter(
        &ev,
        Benchmark::Swaptions,
        &OptimizerConfig::default(),
        |c, base| c.cost <= base.cost,
    )
    .unwrap();
    if let Some(best) = iso_cost.best {
        assert!(best.normalized_cost <= 1.0 + 1e-9);
    }
    let iso_perf = optimize_with_filter(
        &ev,
        Benchmark::Swaptions,
        &OptimizerConfig {
            weights: Weights::cost_only(),
            ..OptimizerConfig::default()
        },
        |c, base| c.ips.0 >= base.ips.0,
    )
    .unwrap();
    let best = iso_perf.best.expect("swaptions iso-perf solution exists");
    assert!(best.normalized_perf >= 1.0 - 1e-9);
    assert!(
        best.normalized_cost < 1.0,
        "2.5D at iso-perf must be cheaper"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn higher_threshold_never_hurts_performance() {
    let run = |threshold: f64| {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        spec.edge_step = Mm(4.0);
        let ev = Evaluator::new(spec.with_threshold(Celsius(threshold)));
        optimize(&ev, Benchmark::Streamcluster, &OptimizerConfig::default())
            .unwrap()
            .best
            .map(|b| b.candidate.ips.0)
    };
    let at_85 = run(85.0).expect("feasible at 85C");
    let at_105 = run(105.0).expect("feasible at 105C");
    assert!(at_105 >= at_85 - 1e-9, "{at_105} vs {at_85}");
}

#[test]
fn evaluation_errors_are_reported_not_panicked() {
    let ev = evaluator();
    // Invalid layout (Eq. (10) violation) surfaces as a layout error.
    let bad = ChipletLayout::Symmetric16 {
        spacing: Spacing::new(0.0, 5.0, 0.0),
    };
    let err = ev
        .evaluate(&bad, Benchmark::Canneal, ev.spec().vf.nominal(), 256)
        .unwrap_err();
    assert!(matches!(err, EvalError::Layout(_)), "{err}");
}

#[test]
fn mintemp_allocation_is_cooler_than_clustered() {
    // Mintemp's periphery-first chessboard allocation must beat a naive
    // clustered (row-major) allocation of the same core count.
    use tac25d_floorplan::raster::place_cores;
    use tac25d_thermal::model::{PackageModel, ThermalConfig};

    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let layout = ChipletLayout::SingleChip;
    let model = PackageModel::new(
        &chip,
        &layout,
        &rules,
        &StackSpec::baseline_2d(),
        ThermalConfig {
            grid: 24,
            ..ThermalConfig::default()
        },
    )
    .unwrap();
    let placed = place_cores(&chip, &layout, &rules).unwrap();
    let per_core = 1.2;
    let p = 128u16;

    let mintemp: Vec<_> = mintemp_active_cores(&chip, p)
        .into_iter()
        .map(|c| (placed[c.0 as usize].rect, per_core))
        .collect();
    let clustered: Vec<_> = (0..p)
        .map(|i| (placed[i as usize].rect, per_core))
        .collect();
    let t_mintemp = model.solve(&mintemp).unwrap().peak().value();
    let t_clustered = model.solve(&clustered).unwrap().peak().value();
    assert!(
        t_mintemp < t_clustered - 3.0,
        "Mintemp {t_mintemp} should be cooler than clustered {t_clustered}"
    );
}
