//! Golden regression test for the Fig. 8 reproduction: pins the optimizer's
//! chosen organizations at the experiment-grade spec so calibration drift
//! is caught immediately (see EXPERIMENTS.md "Calibration record" — these
//! values are one-way doors).
//!
//! Slower than the unit suites (full optimizations at grid 32); values
//! carry small tolerances so legitimate numerical changes (e.g. a better
//! preconditioner) don't trip it, but any change to the calibrated
//! constants will.

use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;

struct Golden {
    benchmark: Benchmark,
    base_mhz: f64,
    base_cores: u16,
    opt_mhz: f64,
    opt_cores: u16,
    perf_gain: f64,
    gain_tol: f64,
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn fig8_organizations_are_stable() {
    let goldens = [
        Golden {
            benchmark: Benchmark::Cholesky,
            base_mhz: 533.0,
            base_cores: 256,
            opt_mhz: 1000.0,
            opt_cores: 256,
            perf_gain: 0.795,
            gain_tol: 0.02,
        },
        Golden {
            benchmark: Benchmark::Hpccg,
            base_mhz: 1000.0,
            base_cores: 160,
            opt_mhz: 1000.0,
            opt_cores: 256,
            perf_gain: 0.393,
            gain_tol: 0.02,
        },
        Golden {
            benchmark: Benchmark::LuCont,
            base_mhz: 1000.0,
            base_cores: 96,
            opt_mhz: 1000.0,
            opt_cores: 96,
            perf_gain: 0.0,
            gain_tol: 1e-9,
        },
        Golden {
            benchmark: Benchmark::Shock,
            base_mhz: 533.0,
            base_cores: 256,
            opt_mhz: 1000.0,
            opt_cores: 256,
            perf_gain: 0.864,
            gain_tol: 0.02,
        },
    ];
    // The experiment-grade spec used by the fig8/headline binaries.
    let mut spec = SystemSpec::fast();
    spec.edge_step = Mm(1.0);
    let ev = Evaluator::new(spec);
    for g in goldens {
        let r = optimize(&ev, g.benchmark, &OptimizerConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", g.benchmark));
        assert_eq!(
            r.baseline.op.freq_mhz, g.base_mhz,
            "{} baseline frequency",
            g.benchmark
        );
        assert_eq!(
            r.baseline.active_cores, g.base_cores,
            "{} baseline cores",
            g.benchmark
        );
        let best = r
            .best
            .unwrap_or_else(|| panic!("{} has a solution", g.benchmark));
        assert_eq!(
            best.candidate.op.freq_mhz, g.opt_mhz,
            "{} optimum frequency",
            g.benchmark
        );
        assert_eq!(
            best.candidate.active_cores, g.opt_cores,
            "{} optimum cores",
            g.benchmark
        );
        let gain = best.normalized_perf - 1.0;
        assert!(
            (gain - g.perf_gain).abs() <= g.gain_tol,
            "{}: gain {gain:.3} drifted from golden {:.3}",
            g.benchmark,
            g.perf_gain
        );
        assert!(best.peak.value() <= 85.0 + 1e-6, "{} peak", g.benchmark);
    }
}
