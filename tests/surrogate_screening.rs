//! Cross-crate integration tests of the multi-fidelity thermal surrogate:
//! kernel superposition + online corrector (tac25d-surrogate), the
//! evaluator's prediction/observation plumbing (tac25d-core) and the
//! surrogate-screened placement search, on a coarse grid for speed.

use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;

fn spec() -> SystemSpec {
    let mut spec = SystemSpec::fast();
    spec.thermal.grid = 16;
    spec.edge_step = Mm(2.0);
    spec
}

#[test]
fn screened_optimizer_matches_exact_and_is_exact_backed() {
    let b = Benchmark::Hpccg;
    let exact_ev = Evaluator::new(spec());
    let exact = optimize(&exact_ev, b, &OptimizerConfig::default()).expect("exact optimize");

    let scr_ev = Evaluator::with_surrogate(spec(), SurrogateConfig::default());
    let cfg = OptimizerConfig {
        fidelity: Fidelity::surrogate_default(),
        ..OptimizerConfig::default()
    };
    let screened = optimize(&scr_ev, b, &cfg).expect("screened optimize");

    let sig = |r: &OptimizeResult| {
        r.best.as_ref().map(|o| {
            (
                o.candidate.op.freq_mhz as u32,
                o.candidate.active_cores,
                (o.candidate.edge.value() * 2.0).round() as i64,
            )
        })
    };
    assert_eq!(sig(&exact), sig(&screened), "same organization chosen");

    // The screened winner's feasibility is exact-solver-backed: its peak
    // re-evaluates identically on a fresh exact evaluator.
    let best = screened
        .best
        .as_ref()
        .expect("hpccg has a feasible organization");
    let fresh = Evaluator::new(spec());
    let e = fresh
        .evaluate(
            &best.layout,
            b,
            best.candidate.op,
            best.candidate.active_cores,
        )
        .expect("re-evaluation");
    assert!(e.feasible(fresh.spec().threshold));
    assert!((e.peak.value() - best.peak.value()).abs() < 1e-9);

    // Screening actually engaged and saved exact solves.
    assert!(
        screened.stats.surrogate_predictions > 0,
        "surrogate consulted"
    );
    assert!(
        screened.stats.surrogate_skips > 0,
        "some placements screened out"
    );
    assert!(
        screened.stats.thermal_sims <= exact.stats.thermal_sims,
        "screened run must not cost more exact solves ({} vs {})",
        screened.stats.thermal_sims,
        exact.stats.thermal_sims
    );
}

#[test]
fn exact_fidelity_ignores_the_surrogate() {
    // A surrogate-equipped evaluator under Exact fidelity must behave
    // exactly like a plain one: no predictions, identical results.
    let b = Benchmark::Canneal;
    let scr_ev = Evaluator::with_surrogate(spec(), SurrogateConfig::default());
    let r = optimize(&scr_ev, b, &OptimizerConfig::default()).expect("optimize");
    assert_eq!(r.stats.surrogate_predictions, 0);
    assert_eq!(r.stats.surrogate_skips, 0);

    let plain =
        optimize(&Evaluator::new(spec()), b, &OptimizerConfig::default()).expect("plain optimize");
    assert_eq!(
        r.best.as_ref().map(|o| o.candidate.active_cores),
        plain.best.as_ref().map(|o| o.candidate.active_cores)
    );
}

#[test]
fn surrogate_fidelity_without_surrogate_degrades_to_exact() {
    // Requesting surrogate fidelity on a plain evaluator must silently
    // run the exact search (and therefore find the same organization).
    let b = Benchmark::Swaptions;
    let ev = Evaluator::new(spec());
    let cfg = OptimizerConfig {
        fidelity: Fidelity::surrogate_default(),
        ..OptimizerConfig::default()
    };
    let r = optimize(&ev, b, &cfg).expect("optimize");
    assert_eq!(r.stats.surrogate_predictions, 0);
    assert!(r.best.is_some());
}

#[test]
fn predictions_train_from_exact_solves_and_stay_close() {
    // Exercising evaluator → surrogate observation: after a training
    // sweep, trusted predictions land within the guard band of the exact
    // solver on fresh, nearby layouts.
    let ev = Evaluator::with_surrogate(spec(), SurrogateConfig::default());
    let b = Benchmark::Cholesky;
    let op = ev.spec().vf.nominal();
    for i in 0..10 {
        let layout = ChipletLayout::Uniform {
            r: 4,
            gap: Mm(0.5 * f64::from(i)),
        };
        ev.evaluate(&layout, b, op, 256).expect("training solve");
    }
    let surrogate = ev.surrogate().expect("surrogate-equipped evaluator");
    assert!(surrogate.observations() >= 10);

    let probe = ChipletLayout::Uniform {
        r: 4,
        gap: Mm(2.25),
    };
    let pred = ev
        .predict_peak(&probe, b, op, 256)
        .expect("prediction available for a 16-chiplet layout");
    assert!(pred.trusted, "dense nearby training data must be trusted");
    let exact = ev.evaluate(&probe, b, op, 256).expect("exact solve");
    assert!(
        (pred.corrected_peak_c - exact.peak.value()).abs() < 3.0,
        "corrected prediction {:.2} vs exact {:.2}",
        pred.corrected_peak_c,
        exact.peak.value()
    );
}

#[test]
fn single_chip_layouts_are_never_predicted() {
    let ev = Evaluator::with_surrogate(spec(), SurrogateConfig::default());
    let op = ev.spec().vf.nominal();
    assert!(ev
        .predict_peak(&ChipletLayout::SingleChip, Benchmark::Hpccg, op, 256)
        .is_none());
}
