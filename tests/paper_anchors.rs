//! Paper-anchor integration tests: quantitative claims from the paper that
//! the reproduction must reproduce in *shape* (who wins, by roughly what
//! factor, where crossovers fall). Coarse grids keep these CI-friendly;
//! EXPERIMENTS.md records the full-resolution numbers.

use tac25d_core::prelude::*;
use tac25d_floorplan::prelude::*;

fn evaluator() -> Evaluator {
    // The experiment-grade spec (32×32 grid): the Fig. 8 baseline anchors
    // sit on thin feasibility margins that coarser grids blur.
    let mut spec = SystemSpec::fast();
    spec.edge_step = Mm(2.0);
    Evaluator::new(spec)
}

/// Sec. V-A / Fig. 5: the single chip running a high-power benchmark at
/// 1 GHz with all cores exceeds 85 °C by a wide margin, and a wide-spaced
/// 16-chiplet system brings it back under.
#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn fig5_single_chip_hot_wide_16_chiplet_cool() {
    let ev = evaluator();
    let op = ev.spec().vf.nominal();
    for b in [
        Benchmark::Shock,
        Benchmark::Blackscholes,
        Benchmark::Cholesky,
    ] {
        let chip = ev.evaluate(&ChipletLayout::SingleChip, b, op, 256).unwrap();
        assert!(chip.peak.value() > 100.0, "{b}: {}", chip.peak);
        let wide = ev
            .evaluate(
                &ChipletLayout::Uniform {
                    r: 4,
                    gap: Mm(10.0),
                },
                b,
                op,
                256,
            )
            .unwrap();
        assert!(
            wide.feasible(Celsius(85.0)),
            "{b} at 10 mm spacing: {}",
            wide.peak
        );
    }
}

/// Sec. V-A: low-power benchmarks meet 85 °C with much less spacing than
/// high-power ones.
#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn fig5_low_power_needs_less_spacing() {
    let ev = evaluator();
    let op = ev.spec().vf.nominal();
    let first_feasible_gap = |b: Benchmark| {
        (0..=20)
            .map(|i| 0.5 * f64::from(i))
            .find(|&gap| {
                ev.evaluate(&ChipletLayout::Uniform { r: 4, gap: Mm(gap) }, b, op, 256)
                    .unwrap()
                    .feasible(Celsius(85.0))
            })
            .unwrap_or(f64::INFINITY)
    };
    let canneal = first_feasible_gap(Benchmark::Canneal);
    let swaptions = first_feasible_gap(Benchmark::Swaptions);
    let shock = first_feasible_gap(Benchmark::Shock);
    assert!(canneal < shock, "canneal {canneal} vs shock {shock}");
    assert!(swaptions < shock, "swaptions {swaptions} vs shock {shock}");
}

/// Fig. 8 anchors: cholesky's baseline is frequency-throttled and the
/// optimizer reclaims ≈80% (paper: 80%); the optimum runs at 1 GHz with
/// all 256 cores.
#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn fig8_cholesky_story() {
    let ev = evaluator();
    let r = optimize(&ev, Benchmark::Cholesky, &OptimizerConfig::default()).unwrap();
    assert_eq!(
        r.baseline.op.freq_mhz, 533.0,
        "baseline throttled to 533 MHz"
    );
    let best = r.best.expect("cholesky solution");
    assert_eq!(best.candidate.op.freq_mhz, 1000.0);
    assert_eq!(best.candidate.active_cores, 256);
    let gain = best.normalized_perf - 1.0;
    assert!(
        (0.6..=1.1).contains(&gain),
        "cholesky gain {gain:.2} (paper: 0.80)"
    );
}

/// Fig. 8 anchors: canneal saturates at 192 cores, needs only the minimum
/// interposer, and saves ≈36% cost at no performance loss.
#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn fig8_canneal_story() {
    let ev = evaluator();
    let cfg = OptimizerConfig {
        weights: Weights::cost_only(),
        ..OptimizerConfig::default()
    };
    let r = optimize_with_filter(&ev, Benchmark::Canneal, &cfg, |c, base| {
        c.ips.0 >= base.ips.0
    })
    .unwrap();
    let best = r.best.expect("canneal solution");
    assert_eq!(best.candidate.active_cores, 192, "canneal saturation point");
    let saving = 1.0 - best.normalized_cost;
    assert!(
        (0.30..=0.42).contains(&saving),
        "canneal cost saving {saving:.3} (paper: 0.36)"
    );
}

/// Fig. 8 anchor: lu.cont gains nothing (its 96-core maximum is feasible
/// on the single chip) but still saves cost.
#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn fig8_lu_cont_story() {
    let ev = evaluator();
    let r = optimize(&ev, Benchmark::LuCont, &OptimizerConfig::default()).unwrap();
    let best = r.best.expect("lu.cont solution");
    assert_eq!(r.baseline.active_cores, 96);
    assert!(
        (best.normalized_perf - 1.0).abs() < 1e-9,
        "lu.cont has no thermal headroom to reclaim"
    );
}

/// Greedy-vs-exhaustive agreement (paper: 99% with 10 starts) on a small
/// candidate corpus.
#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn greedy_matches_exhaustive_feasibility() {
    let ev = evaluator();
    let spec = ev.spec();
    let op = spec.vf.nominal();
    let wc = spec.chip.edge().value() / 4.0;
    let mut agree = 0;
    let mut total = 0;
    for b in [Benchmark::Cholesky, Benchmark::Hpccg, Benchmark::Canneal] {
        for edge in [24.0, 32.0, 40.0] {
            let cand = Candidate {
                count: ChipletCount::Sixteen,
                edge: Mm(edge),
                op,
                active_cores: 256,
                ips: ev.ips(b, op, 256),
                cost: spec.cost.assembly_cost(16, wc * wc, edge * edge).total(),
                objective: 0.0,
            };
            let g = find_placement(
                &ev,
                b,
                &cand,
                PlacementSearch::MultiStartGreedy { starts: 10 },
                42,
            )
            .unwrap()
            .is_some();
            let x = find_placement(&ev, b, &cand, PlacementSearch::Exhaustive, 42)
                .unwrap()
                .is_some();
            total += 1;
            agree += usize::from(g == x);
        }
    }
    assert!(
        agree == total,
        "greedy/exhaustive agreement {agree}/{total} (paper: 99%)"
    );
}

/// The paper's cost-model worked example (Sec. III-C): growing a single
/// chip from 20×20 to 40×40 costs ~27×, while the equivalent 4-chiplet
/// 2.5D system on a 40×40 interposer is cheaper than the 20×20 chip.
#[test]
fn cost_worked_example() {
    let params = tac25d_cost::CostParams::paper();
    let grown = params.single_chip_cost(1600.0) / params.single_chip_cost(400.0);
    assert!((25.0..=30.0).contains(&grown), "27x claim: {grown:.1}");
    let sys = params.assembly_cost(4, 100.0, 1600.0).total();
    assert!(sys < params.single_chip_cost(400.0));
}
