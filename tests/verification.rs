//! Cross-crate verification suite (`crates/verify`): manufactured-solution
//! convergence, closed-form invariants, and the differential re-check of
//! the surrogate-screening guarantees.
//!
//! The MMS and closed-form cases are cheap and always run. The organizer
//! differential suite costs full optimizer runs and follows the repo
//! convention: ignored under the debug profile, exercised by the release
//! suite and the CI `verify` job.

use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;
use tac25d_verify::differential::{default_corpus, fig8_guarantees, run_point};
use tac25d_verify::mms::{chain_error, observed_orders, path_split, FinCase};

/// The coarse spec the cross-crate integration tests standardize on.
fn fast_spec() -> SystemSpec {
    let mut spec = SystemSpec::fast();
    spec.thermal.grid = 16;
    spec.edge_step = Mm(2.0);
    spec
}

#[test]
fn mms_observed_convergence_order_is_at_least_second_minus_margin() {
    // Acceptance bound from the verification plan: observed spatial order
    // ≥ 1.8 on the uniform-slab cosine-mode case, over 3 refinements.
    let samples = FinCase::default().refine(&[12, 24, 48]);
    let orders = observed_orders(&samples);
    for (i, p) in orders.iter().enumerate() {
        assert!(
            *p >= 1.8,
            "refinement {i}: observed order {p:.3} < 1.8 ({samples:?})"
        );
    }
    // Errors must actually shrink, not just maintain a ratio.
    assert!(samples.last().unwrap().max_abs_err < samples[0].max_abs_err / 3.0);
}

#[test]
fn mms_order_improves_toward_two_under_refinement() {
    let samples = FinCase::default().refine(&[12, 24, 48, 96]);
    let orders = observed_orders(&samples);
    // Asymptotically the 5-point stencil is exactly second order; the
    // observed order must approach 2 from its preasymptotic value.
    assert!(orders.last().unwrap() > &1.95, "{orders:?}");
}

#[test]
fn resistance_chain_matches_closed_form_at_every_resolution() {
    // The 1D chain is exact at any grid: the only error left is the
    // linear-solver tolerance.
    for n in [4usize, 8, 16] {
        let e = chain_error(n, 60.0);
        assert!(e < 1e-6, "n={n}: relative error {e:.3e}");
    }
}

#[test]
fn two_path_energy_split_matches_parallel_resistances() {
    for n in [8usize, 16] {
        let s = path_split(n, 40.0);
        let rel = (s.solved_sink_share - s.analytic_sink_share).abs() / s.analytic_sink_share;
        assert!(
            rel < 0.02,
            "n={n}: sink share {:.4} vs analytic {:.4}",
            s.solved_sink_share,
            s.analytic_sink_share
        );
        // Power in = heat out through sink + secondary path, to well under
        // the 0.1% acceptance bound.
        assert!(
            s.balance_error < 1e-3,
            "n={n}: balance {:.3e}",
            s.balance_error
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn differential_corpus_is_consistent_across_solvers() {
    let spec = fast_spec();
    let ev = Evaluator::new(spec.clone());
    // A slice of the corpus keeps the release suite quick; the verify bin
    // runs the full corpus.
    let corpus: Vec<_> = default_corpus(&spec).into_iter().step_by(7).collect();
    assert!(corpus.len() >= 5);
    for point in &corpus {
        let r = run_point(&ev, point).expect("corpus point evaluates");
        assert!(
            r.energy_balance_error < 1e-3,
            "{:?}: balance {:.3e}",
            point.layout,
            r.energy_balance_error
        );
        // The linear solve freezes leakage at 60 °C; the coupled field
        // differs only through the leakage feedback, so the two peaks stay
        // within a few degrees of each other on feasible-range layouts.
        assert!(
            (r.coupled_peak_c - r.linear_peak_c).abs() < 15.0,
            "{:?}: linear {:.1} vs coupled {:.1}",
            point.layout,
            r.linear_peak_c,
            r.coupled_peak_c
        );
        assert!(r.max_chiplet_dt() < 15.0);
        assert!(r.outer_iterations >= 1);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn fig8_screened_search_matches_exact_on_fast_spec() {
    // Structural PR-1 guarantee on the coarse spec: the screened organizer
    // picks the exact organizer's organization for every benchmark, and
    // every winner's steady state closes its energy balance. The 1 °C
    // surrogate error bound is calibrated to the paper grid and enforced
    // by the CI `verify diff` run.
    let cases = fig8_guarantees(&fast_spec(), 42);
    assert_eq!(cases.len(), 8);
    for c in &cases {
        assert!(
            c.matched,
            "{}: screened {} != exact {}",
            c.benchmark.name(),
            c.screened_desc,
            c.exact_desc
        );
        let r = c.record.as_ref().expect("feasible organization");
        assert!(
            r.energy_balance_error < 1e-3,
            "{}: balance {:.3e}",
            c.benchmark.name(),
            r.energy_balance_error
        );
        assert!(
            c.screened_sims <= c.exact_sims,
            "{}: screening must not cost extra exact solves",
            c.benchmark.name()
        );
    }
}
