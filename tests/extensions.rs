//! Integration tests for the extension features: multi-application
//! optimization, PDN analysis, transient simulation, reliability factors
//! and the exporters — exercised together across crates.

use tac25d_core::prelude::*;
use tac25d_floorplan::hotspot::{die_floorplan, render_flp};
use tac25d_floorplan::prelude::*;
use tac25d_floorplan::svg::render_layout_svg;
use tac25d_pdn::{PdnModel, PdnParams};
use tac25d_power::reliability::ReliabilityModel;
use tac25d_thermal::model::{PackageModel, ThermalConfig};

fn small_spec() -> SystemSpec {
    let mut spec = SystemSpec::fast();
    spec.thermal.grid = 16;
    spec.edge_step = Mm(4.0);
    spec
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn optimal_organization_respects_reliability_and_pdn() {
    // End-to-end: optimize, then run the extension analyses on the result.
    let ev = Evaluator::new(small_spec());
    let b = Benchmark::Hpccg;
    let result = optimize(&ev, b, &OptimizerConfig::default()).unwrap();
    let best = result.best.expect("hpccg solution");
    let spec = ev.spec();

    // Reliability: optimized system must not be *less* reliable than its
    // own thermal state implies (sanity of the Arrhenius direction).
    let rel = ReliabilityModel::default();
    let factor = rel.relative_mttf(best.peak, result.baseline.peak);
    if best.peak < result.baseline.peak {
        assert!(factor > 1.0);
    }

    // PDN: the optimized power map must produce a finite droop and a
    // plausible current magnitude.
    let profile = b.profile();
    let per_core = spec
        .core_power
        .active_power(&profile, best.candidate.op, best.peak);
    let active: std::collections::HashSet<_> =
        mintemp_active_cores(&spec.chip, best.candidate.active_cores)
            .into_iter()
            .collect();
    let powers: Vec<f64> = spec
        .chip
        .cores()
        .map(|c| if active.contains(&c) { per_core } else { 0.0 })
        .collect();
    let pdn = PdnModel::new(&spec.chip, &best.layout, &spec.rules, PdnParams::default()).unwrap();
    let sol = pdn.solve(&powers).unwrap();
    assert!(sol.total_current() > 50.0 && sol.total_current() < 1500.0);
    assert!(sol.max_droop() > 0.0 && sol.max_droop() < 0.2);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn transient_settles_to_the_evaluators_steady_state() {
    // The transient path and the steady-state path must agree in the
    // long-time limit for the same power map.
    let spec = small_spec();
    let layout = ChipletLayout::Uniform { r: 4, gap: Mm(4.0) };
    let model = PackageModel::new(
        &spec.chip,
        &layout,
        &spec.rules,
        &spec.stack_25d,
        ThermalConfig {
            grid: 16,
            ..spec.thermal.clone()
        },
    )
    .unwrap();
    let rects = layout.chiplet_rects(&spec.chip, &spec.rules);
    let sources: Vec<_> = rects.iter().map(|r| (*r, 18.0)).collect();
    let steady = model.solve(&sources).unwrap();
    let trace = model
        .simulate_transient(None, |_, _, _| sources.clone(), 5.0, 300)
        .unwrap();
    let final_peak = trace.samples.last().unwrap().peak.value();
    assert!(
        (final_peak - steady.peak().value()).abs() < 0.5,
        "transient {} vs steady {}",
        final_peak,
        steady.peak()
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "experiment-grade test; run with --release")]
fn multi_app_design_is_no_worse_than_the_neediest_single_app() {
    let ev = Evaluator::new(small_spec());
    let apps = [Benchmark::Canneal, Benchmark::Cholesky];
    let shared = optimize_multi_app(
        &ev,
        &apps,
        &MultiAppPolicy::WorstCase,
        Weights::performance_only(),
        &OptimizerConfig::default(),
    )
    .unwrap()
    .expect("shared design exists");
    // cholesky (the thermally needy app) achieves its solo performance on
    // the shared design.
    let solo = optimize(&ev, Benchmark::Cholesky, &OptimizerConfig::default())
        .unwrap()
        .best
        .unwrap();
    let cholesky_on_shared = &shared.per_app[1];
    assert!(cholesky_on_shared.candidate.ips.0 >= solo.candidate.ips.0 - 1e-9);
}

#[test]
fn exports_are_consistent_with_geometry() {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    let layout = ChipletLayout::Symmetric16 {
        spacing: Spacing::new(3.0, 1.0, 2.0),
    };
    let blocks = die_floorplan(&chip, &layout, &rules).unwrap();
    let flp = render_flp(&blocks);
    // Every flp line's width equals the core tile edge in metres.
    let tile_m = chip.tile_edge().to_meters();
    for line in flp.lines().filter(|l| !l.starts_with('#')) {
        let w: f64 = line.split('\t').nth(1).unwrap().parse().unwrap();
        assert!((w - tile_m).abs() < 1e-9);
    }
    // SVG renders and references the right canvas.
    let svg = render_layout_svg(&chip, &layout, &rules, None).unwrap();
    let edge = layout.footprint_edge(&chip, &rules).value();
    assert!(svg.contains(&format!("viewBox=\"0 0 {edge} {edge}\"")));
}

#[test]
fn pdn_flags_the_reclaimed_shock_configuration() {
    // The footnote-3 storyline as a regression test: shock's reclaimed
    // 256-core 1 GHz configuration draws enough current to violate the
    // default droop budget.
    let spec = small_spec();
    let profile = Benchmark::Shock.profile();
    let op = spec.vf.nominal();
    let per_core = spec.core_power.active_power(&profile, op, Celsius(85.0));
    let powers = vec![per_core; 256];
    let layout = ChipletLayout::Uniform { r: 4, gap: Mm(8.0) };
    let pdn = PdnModel::new(&spec.chip, &layout, &spec.rules, PdnParams::default()).unwrap();
    let sol = pdn.solve(&powers).unwrap();
    assert!(sol.total_current() > 350.0);
    assert!(!sol.meets_budget());
}
